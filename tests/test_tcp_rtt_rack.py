"""RTT estimation (RFC 6298) and RACK loss detection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcp.rack import RackState, default_reo_wnd_ns
from repro.tcp.rtt import RTTEstimator
from repro.units import msec, usec


def estimator():
    return RTTEstimator(min_rto_ns=msec(1), max_rto_ns=msec(500), initial_rto_ns=msec(2))


class TestRTTEstimator:
    def test_first_sample_initializes(self):
        est = estimator()
        est.update(usec(100))
        assert est.srtt_ns == usec(100)
        assert est.rttvar_ns == usec(50)
        assert est.min_rtt_ns == usec(100)

    def test_smoothing_moves_toward_samples(self):
        est = estimator()
        est.update(usec(100))
        for _ in range(50):
            est.update(usec(200))
        assert usec(180) < est.srtt_ns <= usec(200)

    def test_min_rtt_tracks_minimum(self):
        est = estimator()
        for sample in (100, 60, 90, 40, 80):
            est.update(usec(sample))
        assert est.min_rtt_ns == usec(40)

    def test_rto_bounds(self):
        est = estimator()
        assert est.rto_ns() == msec(2)  # initial
        est.update(usec(50))
        assert est.rto_ns() >= msec(1)  # floor
        for _ in range(20):
            est.update(msec(400))
        assert est.rto_ns() <= msec(500)  # ceiling

    def test_nonpositive_samples_ignored(self):
        est = estimator()
        est.update(0)
        est.update(-5)
        assert est.samples == 0
        assert est.srtt_ns is None

    def test_reset(self):
        est = estimator()
        est.update(usec(100))
        est.reset()
        assert est.srtt_ns is None
        assert est.rto_ns() == msec(2)

    def test_reset_clears_path_minimum_and_samples(self):
        # Regression: reset() used to leave min_rtt_ns and samples
        # behind, so RACK's reorder window kept sizing itself from the
        # old path's minimum RTT after a path reset.
        est = estimator()
        est.update(usec(100))
        est.update(usec(300))
        assert est.min_rtt_ns == usec(100)
        assert est.samples == 2
        est.reset()
        assert est.min_rtt_ns is None
        assert est.samples == 0
        assert default_reo_wnd_ns(est.min_rtt_ns) == default_reo_wnd_ns(None)
        # The new path's minimum is learned from scratch, not clamped
        # to the old path's.
        est.update(usec(500))
        assert est.min_rtt_ns == usec(500)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            RTTEstimator(0, 10, 5)
        with pytest.raises(ValueError):
            RTTEstimator(10, 5, 5)

    @given(st.lists(st.integers(1, 10_000_000), min_size=1, max_size=100))
    @settings(max_examples=100)
    def test_srtt_stays_within_sample_envelope(self, samples):
        est = estimator()
        for s in samples:
            est.update(s)
        assert min(samples) <= est.srtt_ns <= max(samples)

    @given(st.lists(st.integers(1, 10_000_000), min_size=1, max_size=100))
    @settings(max_examples=100)
    def test_rto_always_within_bounds(self, samples):
        est = estimator()
        for s in samples:
            est.update(s)
            assert msec(1) <= est.rto_ns() <= msec(500)


class Seg:
    def __init__(self, sent_ns):
        self.sent_ns = sent_ns


class TestRackState:
    def test_update_keeps_most_recent(self):
        rack = RackState()
        rack.update_on_delivered(100, 10)
        rack.update_on_delivered(50, 20)  # older transmission: ignored
        assert rack.xmit_ns == 100
        rack.update_on_delivered(200, 5)
        assert rack.xmit_ns == 200

    def test_tie_broken_by_end_seq(self):
        rack = RackState()
        rack.update_on_delivered(100, 10)
        rack.update_on_delivered(100, 30)
        assert rack.end_seq == 30

    def test_detect_nothing_before_delivery(self):
        rack = RackState()
        lost, deadline = rack.detect([Seg(0)], lambda s: 1000)
        assert lost == [] and deadline is None

    def test_detect_marks_overdue(self):
        rack = RackState()
        rack.update_on_delivered(10_000, 100)
        old = Seg(1_000)    # sent long before the delivered segment
        fresh = Seg(9_900)  # within the reorder window
        lost, deadline = rack.detect([old, fresh], lambda s: 500)
        assert lost == [old]
        assert deadline == 9_900 + 500

    def test_detect_ignores_later_sends(self):
        rack = RackState()
        rack.update_on_delivered(10_000, 100)
        later = Seg(20_000)  # sent after the delivered one: ineligible
        lost, deadline = rack.detect([later], lambda s: 1)
        assert lost == []
        assert deadline is None

    def test_timer_path_uses_as_of(self):
        rack = RackState()
        rack.update_on_delivered(10_000, 100)
        seg = Seg(9_900)
        lost, _ = rack.detect([seg], lambda s: 500)
        assert lost == []
        lost, _ = rack.detect([seg], lambda s: 500, as_of_ns=10_500)
        assert lost == [seg]

    def test_per_segment_window(self):
        rack = RackState()
        rack.update_on_delivered(10_000, 100)
        near = Seg(9_000)
        far = Seg(9_000)
        # 'near' gets a tight window, 'far' a wide (cross-TDN) one.
        lost, _ = rack.detect([near, far], lambda s: 100 if s is near else 100_000)
        assert lost == [near]


class TestReorderWindow:
    def test_default_quarter_min_rtt(self):
        assert default_reo_wnd_ns(usec(100)) == usec(25)

    def test_floor_without_min_rtt(self):
        assert default_reo_wnd_ns(None) == 1_000

    def test_floor_with_tiny_rtt(self):
        assert default_reo_wnd_ns(100) == 1_000
