"""Notifier: day/night announcements and the §5.4 cost model."""

import pytest

from repro.metrics.cdf import quantile
from repro.rdcn.config import NotifierConfig, RDCNConfig
from repro.rdcn.notifier import TDNNotifier, sample_generation_delay_ns
from repro.rdcn.schedule import ScheduleDriver, TDNSchedule
from repro.rdcn.topology import build_two_rack_testbed
from repro.sim import SeededRandom, Simulator
from repro.units import gbps, usec


class TestGenerationDelaySampling:
    def test_quantiles_match_configuration(self):
        rng = SeededRandom(3)
        samples = [sample_generation_delay_ns(rng, 250, 2750) for _ in range(20_000)]
        assert quantile(samples, 0.5) == pytest.approx(250, rel=0.15)
        assert quantile(samples, 0.99) == pytest.approx(2750, rel=0.2)

    def test_degenerate_tail(self):
        rng = SeededRandom(3)
        assert sample_generation_delay_ns(rng, 100, 100) == 100
        assert sample_generation_delay_ns(rng, 100, 50) == 100

    def test_caching_ratio_near_paper(self):
        """Cached vs uncached generation: ~8x at p50, ~2.7x at p99."""
        cfg = NotifierConfig()
        rng = SeededRandom(11)
        cached = [
            sample_generation_delay_ns(
                rng, cfg.generation_cached_p50_ns, cfg.generation_cached_tail_ns
            )
            for _ in range(20_000)
        ]
        uncached = [
            sample_generation_delay_ns(
                rng, cfg.generation_uncached_p50_ns, cfg.generation_uncached_tail_ns
            )
            for _ in range(20_000)
        ]
        p50_ratio = quantile(uncached, 0.5) / quantile(cached, 0.5)
        p99_ratio = quantile(uncached, 0.99) / quantile(cached, 0.99)
        assert 6.0 < p50_ratio < 10.0     # paper: 8x
        assert 1.8 < p99_ratio < 3.8      # paper: 2.7x


class TestPushPullModel:
    def test_pull_cost_constant(self):
        sim = Simulator()
        driver = ScheduleDriver(sim, TDNSchedule.uniform((0, 1), usec(10), usec(2)))
        notifier = TDNNotifier(sim, driver, NotifierConfig(pull_model=True), SeededRandom(1))
        costs = [notifier.host_processing_delay_ns(i) for i in range(8)]
        assert len(set(costs)) == 1

    def test_push_cost_grows_with_flow_index(self):
        sim = Simulator()
        driver = ScheduleDriver(sim, TDNSchedule.uniform((0, 1), usec(10), usec(2)))
        notifier = TDNNotifier(sim, driver, NotifierConfig(pull_model=False), SeededRandom(1))
        costs = [notifier.host_processing_delay_ns(i) for i in range(8)]
        assert costs == sorted(costs)
        assert costs[-1] > costs[0]

    def test_push_pull_ratio_orders_of_magnitude(self):
        """§5.4: pull reduces total update time by ~3 orders of magnitude."""
        cfg_push = NotifierConfig(pull_model=False)
        cfg_pull = NotifierConfig(pull_model=True)
        sim = Simulator()
        driver = ScheduleDriver(sim, TDNSchedule.uniform((0, 1), usec(10), usec(2)))
        push = TDNNotifier(sim, driver, cfg_push, SeededRandom(1))
        sim2 = Simulator()
        driver2 = ScheduleDriver(sim2, TDNSchedule.uniform((0, 1), usec(10), usec(2)))
        pull = TDNNotifier(sim2, driver2, cfg_pull, SeededRandom(1))
        n_flows = 16
        push_total = sum(push.host_processing_delay_ns(i) for i in range(n_flows))
        pull_total = sum(pull.host_processing_delay_ns(i) for i in range(n_flows))
        assert push_total / pull_total > 500


class TestNotificationDelivery:
    def _run_testbed(self, notifier_cfg, weeks=2):
        cfg = RDCNConfig(
            n_hosts_per_rack=2,
            host_link_rate_bps=gbps(25),
            notifier=notifier_cfg,
        )
        testbed = build_two_rack_testbed(cfg)
        seen = []
        for rack in (0, 1):
            for host in testbed.hosts[rack]:
                host.subscribe_tdn_changes(
                    lambda n, h=host: seen.append((testbed.sim.now, h.address, n.tdn_id))
                )
        testbed.start()
        testbed.sim.run(until=cfg.week_ns * weeks)
        return testbed, seen

    def test_all_hosts_notified_each_day(self):
        testbed, seen = self._run_testbed(NotifierConfig(night_policy="none"))
        # 7 days/week x 2 weeks x 4 hosts.
        assert len(seen) == 7 * 2 * 4

    def test_notification_carries_active_tdn(self):
        testbed, seen = self._run_testbed(NotifierConfig(night_policy="none"))
        tdns = {t for _, _, t in seen}
        assert tdns == {0, 1}

    def test_slowdown_policy_warns_before_slow_day(self):
        testbed, seen = self._run_testbed(NotifierConfig(night_policy="slowdown"))
        cfg = testbed.config
        # The optical->packet transition (night start at 1380 us into
        # the week) must produce an early TDN-0 warning.
        night_start = 6 * (cfg.day_ns + cfg.night_ns) + cfg.day_ns
        warned = [
            t for (t, _h, tdn) in seen
            if tdn == 0 and night_start <= t % cfg.week_ns < night_start + cfg.night_ns
        ]
        assert warned

    def test_slowdown_policy_no_warning_before_fast_day(self):
        testbed, seen = self._run_testbed(NotifierConfig(night_policy="slowdown"))
        cfg = testbed.config
        # The packet->optical night (before day index 6) gets no early
        # TDN-1 announcement.
        night_start = 5 * (cfg.day_ns + cfg.night_ns) + cfg.day_ns
        early = [
            t for (t, _h, tdn) in seen
            if tdn == 1 and night_start <= t % cfg.week_ns < night_start + cfg.night_ns
        ]
        assert early == []

    def test_dedicated_network_latency_fixed(self):
        testbed, _seen = self._run_testbed(NotifierConfig(dedicated_network=True, night_policy="none"))
        samples = testbed.notifier.delivery_latency_samples
        assert samples
        # control delay + generation (sub-3 us) + pull read.
        assert max(samples) < usec(20)

    def test_shared_network_latency_higher_under_load(self):
        dedicated, _ = self._run_testbed(NotifierConfig(dedicated_network=True, night_policy="none"))
        shared, _ = self._run_testbed(NotifierConfig(dedicated_network=False, night_policy="none"))
        ded = dedicated.notifier.delivery_latency_samples
        sha = shared.notifier.delivery_latency_samples
        # Without data traffic the shared path is only slightly slower;
        # it must never be faster on average than the dedicated one.
        assert sum(sha) / len(sha) >= sum(ded) / len(ded) * 0.5
