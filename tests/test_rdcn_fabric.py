"""Fabric: time-multiplexed uplink, gating, circuit marks."""

import pytest

from repro.net.packet import Packet, TCPSegment
from repro.net.queues import DropTailQueue
from repro.rdcn.fabric import NetworkPath, RackUplink
from repro.sim import Simulator
from repro.units import gbps, usec


def make_uplink(sim, deliver, capacity=16):
    paths = {
        0: NetworkPath(0, gbps(10), usec(40), is_circuit=False, name="packet"),
        1: NetworkPath(1, gbps(100), usec(10), is_circuit=True, name="optical"),
    }
    return RackUplink(sim, paths, DropTailQueue(capacity), deliver)


class TestNetworkPath:
    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkPath(0, 0, 10)
        with pytest.raises(ValueError):
            NetworkPath(0, 1e9, -1)


class TestRackUplink:
    def test_gated_until_active(self):
        sim = Simulator()
        got = []
        uplink = make_uplink(sim, lambda p: got.append(sim.now))
        uplink.enqueue(Packet("a", "b", 1500))
        sim.run(until=usec(100))
        assert got == []  # night: nothing moves
        uplink.set_active(0)
        sim.run(until=usec(200))
        assert len(got) == 1

    def test_packet_path_timing(self):
        sim = Simulator()
        got = []
        uplink = make_uplink(sim, lambda p: got.append(sim.now))
        uplink.set_active(0)
        uplink.enqueue(Packet("a", "b", 1500))
        sim.run()
        # 1.2 us serialization at 10 Gbps + 40 us propagation.
        assert got == [usec(40) + 1200]

    def test_optical_path_faster(self):
        sim = Simulator()
        got = []
        uplink = make_uplink(sim, lambda p: got.append(sim.now))
        uplink.set_active(1)
        uplink.enqueue(Packet("a", "b", 1500))
        sim.run()
        assert got == [usec(10) + 120]

    def test_network_id_stamped(self):
        sim = Simulator()
        got = []
        uplink = make_uplink(sim, got.append)
        uplink.set_active(1)
        pkt = Packet("a", "b", 1500)
        uplink.enqueue(pkt)
        sim.run()
        assert pkt.network_id == 1

    def test_circuit_mark_only_on_circuit(self):
        sim = Simulator()
        uplink = make_uplink(sim, lambda p: None)
        seg_pkt = TCPSegment("a", "b", 1, 2, payload_len=100)
        seg_opt = TCPSegment("a", "b", 1, 2, payload_len=100)
        uplink.set_active(0)
        uplink.enqueue(seg_pkt)
        sim.run()
        uplink.set_active(1)
        uplink.enqueue(seg_opt)
        sim.run()
        assert seg_pkt.circuit_mark is False
        assert seg_opt.circuit_mark is True

    def test_night_mid_serialization_still_delivers(self):
        sim = Simulator()
        got = []
        uplink = make_uplink(sim, lambda p: got.append(sim.now))
        uplink.set_active(0)
        uplink.enqueue(Packet("a", "b", 1500))  # 1.2 us serialization
        sim.run(until=500)
        uplink.set_active(None)  # night begins mid-serialization
        sim.run()
        assert len(got) == 1  # the packet was on the wire

    def test_night_stops_queue_service(self):
        sim = Simulator()
        got = []
        uplink = make_uplink(sim, lambda p: got.append(p))
        uplink.set_active(0)
        for _ in range(5):
            uplink.enqueue(Packet("a", "b", 1500))
        sim.run(until=1100)  # first packet still serializing (1.2 us)
        uplink.set_active(None)
        sim.run(until=usec(500))
        assert len(got) == 1
        assert len(uplink.queue) == 4

    def test_voq_overflow_drops(self):
        sim = Simulator()
        uplink = make_uplink(sim, lambda p: None, capacity=2)
        results = [uplink.enqueue(Packet("a", "b", 1500)) for _ in range(4)]
        assert results == [True, True, False, False]
        assert uplink.queue.drops == 2

    def test_rate_switch_between_packets(self):
        sim = Simulator()
        got = []
        uplink = make_uplink(sim, lambda p: (got.append((sim.now, p.network_id))))
        uplink.set_active(0)
        uplink.enqueue(Packet("a", "b", 1500))
        uplink.enqueue(Packet("a", "b", 1500))
        sim.run(until=1100)  # first packet still serializing, second waiting
        uplink.set_active(1)
        sim.run()
        # The second packet rides the faster optical path and overtakes
        # the first — exactly the cross-TDN reordering of §3.4.
        assert [net for _t, net in got] == [1, 0]
        assert got[0][0] < got[1][0]

    def test_per_tdn_counters(self):
        sim = Simulator()
        uplink = make_uplink(sim, lambda p: None)
        uplink.set_active(0)
        uplink.enqueue(Packet("a", "b", 1500))
        sim.run()
        uplink.set_active(1)
        uplink.enqueue(Packet("a", "b", 1500))
        sim.run()
        assert uplink.per_tdn_tx == {0: 1, 1: 1}

    def test_unknown_tdn_rejected(self):
        sim = Simulator()
        uplink = make_uplink(sim, lambda p: None)
        with pytest.raises(KeyError):
            uplink.set_active(7)
