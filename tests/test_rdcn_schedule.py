"""Schedule: days, nights, weeks, rotor view, driver callbacks."""

import pytest

from repro.rdcn.schedule import Day, ScheduleDriver, TDNSchedule, pair_schedule
from repro.sim import Simulator
from repro.units import usec


def paper_schedule():
    return TDNSchedule.uniform((0, 0, 0, 0, 0, 0, 1), usec(180), usec(20))


class TestTDNSchedule:
    def test_week_length(self):
        s = paper_schedule()
        assert s.week_ns == 7 * usec(200)

    def test_active_during_days(self):
        s = paper_schedule()
        assert s.active_at(0) == 0
        assert s.active_at(usec(179)) == 0
        assert s.active_at(usec(200)) == 0
        # 7th configuration is optical.
        assert s.active_at(usec(6 * 200 + 10)) == 1

    def test_nights_are_blackouts(self):
        s = paper_schedule()
        assert s.active_at(usec(185)) is None
        assert s.active_at(usec(6 * 200 + 190)) is None

    def test_periodicity(self):
        s = paper_schedule()
        for t in (0, usec(100), usec(185), usec(1250)):
            assert s.active_at(t) == s.active_at(t + s.week_ns)
            assert s.active_at(t) == s.active_at(t + 5 * s.week_ns)

    def test_tdn_fraction(self):
        s = paper_schedule()
        assert s.tdn_fraction(0) == pytest.approx(6 * 180 / 1400)
        assert s.tdn_fraction(1) == pytest.approx(180 / 1400)

    def test_day_starts(self):
        s = paper_schedule()
        starts = s.day_starts_in_week()
        assert starts == [usec(200 * i) for i in range(7)]
        assert s.day_starts_in_week(tdn_id=1) == [usec(1200)]

    def test_transitions(self):
        s = TDNSchedule.uniform((0, 1), usec(10), usec(2))
        assert s.transitions_in_week() == [
            (0, 0),
            (usec(10), None),
            (usec(12), 1),
            (usec(22), None),
        ]

    def test_rate_profile_covers_week(self):
        s = paper_schedule()
        pieces = s.rate_profile([10e9, 100e9])
        assert pieces[0] == (0, usec(180), 10e9)
        assert pieces[-1][1] == s.week_ns
        covered = sum(end - start for start, end, _ in pieces)
        assert covered == s.week_ns

    def test_no_nights_allowed(self):
        s = TDNSchedule.uniform((0, 1), usec(10), 0)
        assert s.active_at(usec(5)) == 0
        assert s.active_at(usec(15)) == 1
        assert s.week_ns == usec(20)

    def test_invalid_day(self):
        with pytest.raises(ValueError):
            Day(0, 0, 0)
        with pytest.raises(ValueError):
            Day(-1, 10, 0)
        with pytest.raises(ValueError):
            Day(0, 10, -1)

    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError):
            TDNSchedule([])

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            paper_schedule().active_at(-1)


class TestPairSchedule:
    def test_eight_racks_gives_paper_ratio(self):
        s = pair_schedule(8, usec(180), usec(20))
        assert len(s.days) == 7
        assert [d.tdn_id for d in s.days] == [0] * 6 + [1]

    def test_two_racks_always_direct(self):
        s = pair_schedule(2, usec(180), usec(20))
        assert [d.tdn_id for d in s.days] == [1]

    def test_invalid_rack_count(self):
        with pytest.raises(ValueError):
            pair_schedule(1, usec(180), usec(20))


class TestScheduleDriver:
    def test_day_and_night_callbacks(self):
        sim = Simulator()
        s = TDNSchedule.uniform((0, 1), usec(10), usec(2))
        driver = ScheduleDriver(sim, s)
        events = []
        driver.on_day_start(lambda tdn, idx: events.append(("day", sim.now, tdn, idx)))
        driver.on_night_start(lambda idx: events.append(("night", sim.now, idx)))
        driver.start()
        sim.run(until=usec(24) - 1)
        assert events == [
            ("day", 0, 0, 0),
            ("night", usec(10), 0),
            ("day", usec(12), 1, 1),
            ("night", usec(22), 1),
        ]

    def test_continues_across_weeks(self):
        sim = Simulator()
        s = TDNSchedule.uniform((0, 1), usec(10), usec(2))
        driver = ScheduleDriver(sim, s)
        days = []
        driver.on_day_start(lambda tdn, idx: days.append(idx))
        driver.start()
        sim.run(until=s.week_ns * 5)
        assert days[:10] == list(range(10))
        assert driver.day_index == days[-1] + 1

    def test_lead_callbacks_fire_ahead(self):
        sim = Simulator()
        s = TDNSchedule.uniform((0, 0, 1), usec(10), usec(2))
        driver = ScheduleDriver(sim, s)
        leads = []
        driver.on_day_lead(usec(5), lambda tdn, idx: leads.append((sim.now, tdn, idx)), tdn_id=1)
        driver.start()
        sim.run(until=s.week_ns * 3)
        # Optical day starts at 24 us within each week.
        expected_first = usec(24) - usec(5)
        assert leads[0] == (expected_first, 1, 2)
        assert leads[1][0] == expected_first + s.week_ns
        assert len(leads) == 3

    def test_lead_crossing_week_boundary(self):
        sim = Simulator()
        # Optical day at the very start of the week: lead must fire in
        # the previous week.
        s = TDNSchedule.uniform((1, 0, 0), usec(10), usec(2))
        driver = ScheduleDriver(sim, s)
        leads = []
        driver.on_day_lead(usec(5), lambda tdn, idx: leads.append(sim.now), tdn_id=1)
        driver.start()
        sim.run(until=s.week_ns * 3)
        # Week 1's optical day starts at week_ns; its lead fires 5 us before.
        assert s.week_ns - usec(5) in leads
        assert 2 * s.week_ns - usec(5) in leads

    def test_current_tdn_tracking(self):
        sim = Simulator()
        driver = ScheduleDriver(sim, paper_schedule())
        driver.start()
        sim.run(until=usec(100))
        assert driver.current_tdn == 0
        sim.run(until=usec(190))
        assert driver.current_tdn is None
        sim.run(until=usec(1250))
        assert driver.current_tdn == 1

    def test_double_start_rejected(self):
        sim = Simulator()
        driver = ScheduleDriver(sim, paper_schedule())
        driver.start()
        with pytest.raises(RuntimeError):
            driver.start()

    def test_lead_longer_than_week_rejected(self):
        sim = Simulator()
        s = TDNSchedule.uniform((0, 1), usec(10), usec(2))
        driver = ScheduleDriver(sim, s)
        with pytest.raises(ValueError):
            driver.on_day_lead(s.week_ns, lambda tdn, idx: None)
