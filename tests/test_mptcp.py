"""MPTCP: tdm scheduler, DSS sequencing, gating, reinjection."""

import pytest

from repro.mptcp.connection import MPTCPConnection, create_mptcp_pair
from repro.mptcp.scheduler import TdmScheduler
from repro.net.packet import TDNNotification
from repro.sim import Simulator
from repro.tcp.config import TCPConfig
from repro.units import msec, usec

from tests.helpers import two_hosts


def mptcp_pair(sim, a, b, **kwargs):
    kwargs.setdefault("subscribe_notifications", False)
    return create_mptcp_pair(sim, a, b, **kwargs)


class TestTdmScheduler:
    def test_steers_by_active_tdn(self):
        sched = TdmScheduler(2)
        assert sched.allows(0)
        assert not sched.allows(1)
        sched.set_active_tdn(1)
        assert sched.allows(1)
        assert not sched.allows(0)

    def test_single_subflow_always_allowed(self):
        sched = TdmScheduler(1)
        sched.set_active_tdn(1)
        assert sched.allows(0)

    def test_active_subflow_clamped(self):
        sched = TdmScheduler(2)
        sched.set_active_tdn(5)
        assert sched.active_subflow() == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            TdmScheduler(0)


class TestEstablishment:
    def test_subflows_establish(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = mptcp_pair(sim, a, b)
        sim.run(until=msec(5))
        assert client.established
        assert server.established

    def test_distinct_ports(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = mptcp_pair(sim, a, b)
        ports = {(sf.local_port, sf.remote_port) for sf in client.subflows}
        assert len(ports) == 2


class TestDataTransfer:
    def test_bulk_on_subflow0(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = mptcp_pair(sim, a, b)
        client.start_bulk()
        sim.run(until=msec(10))
        assert server.stats.bytes_delivered > 1_000_000
        # TDN 0 active the whole time: only subflow 0 carried data.
        assert client.subflows[1].snd_nxt == 1  # just the SYN

    def test_fixed_write(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = mptcp_pair(sim, a, b)
        client.write(90_000)
        sim.run(until=msec(10))
        assert server.stats.bytes_delivered == 90_000
        assert server.data_rcv.rcv_nxt == 90_000

    def test_dss_ack_frees_window(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = mptcp_pair(sim, a, b)
        client.start_bulk()
        sim.run(until=msec(10))
        assert client.dss_una > 0
        assert len(client.chunks) < 200

    def test_delivery_callback(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = mptcp_pair(sim, a, b)
        seen = []
        server.on_delivered = lambda t, rcv: seen.append(rcv)
        client.write(30_000)
        sim.run(until=msec(10))
        assert seen[-1] == 30_000
        assert seen == sorted(seen)

    def test_switching_uses_both_subflows(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = mptcp_pair(sim, a, b)
        client.start_bulk()
        sim.run(until=msec(3))
        client.set_active_tdn(1)
        server.set_active_tdn(1)
        sim.run(until=msec(8))
        assert client.subflows[1].stats.segments_sent > 0
        assert server.stats.bytes_delivered > 0


class TestGating:
    def test_inactive_subflow_does_not_send_data(self):
        sim, a, b, ab, _ba = two_hosts()
        subflow_ids = []
        original = ab.deliver
        ab.deliver = lambda p: (
            subflow_ids.append(p.subflow_id) if p.payload_len else None,
            original(p),
        )
        client, server = mptcp_pair(sim, a, b)
        client.start_bulk()
        sim.run(until=msec(5))
        assert set(subflow_ids) <= {0}

    def test_receiver_acks_suppressed_on_inactive_subflow(self):
        """Data arriving for a gated subflow is not ACKed until the
        subflow's TDN returns (§2.2's stuck ACKs)."""
        sim, a, b, _ab, ba = two_hosts()
        acks = []
        original = ba.deliver
        ba.deliver = lambda p: (
            acks.append((sim.now, p.subflow_id)) if p.is_ack and not p.payload_len else None,
            original(p),
        )
        client, server = mptcp_pair(sim, a, b)
        client.start_bulk()
        sim.run(until=msec(2))
        # Sender switches to subflow 1 but the receiver does NOT (its
        # notification is delayed): subflow-1 ACKs are suppressed.
        # (The single handshake-completing ACK from before is exempt.)
        client.set_active_tdn(1)
        acks.clear()
        sim.run(until=msec(2) + usec(500))
        sf1_acks = [t for t, sf in acks if sf == 1]
        assert sf1_acks == []
        # Receiver learns of the switch: the pent-up ACK goes out.
        server.set_active_tdn(1)
        sim.run(until=msec(4))
        sf1_acks = [t for t, sf in acks if sf == 1]
        assert sf1_acks

    def test_gated_rto_collapses_subflow(self):
        """A subflow RTO during its blocked period behaves like vanilla
        TCP: window collapse plus connection-level reinjection of the
        data that never made it (§2.2)."""
        sim, a, b, ab, _ba = two_hosts()
        client, server = mptcp_pair(sim, a, b)
        client.start_bulk()
        sim.run(until=msec(2))
        client.set_active_tdn(1)
        server.set_active_tdn(1)
        sim.run(until=msec(3))
        # Drop subflow-1 data from now on (the tail lost at the night
        # gate), then switch back to the packet TDN.
        original = ab.deliver

        def gate(pkt):
            if pkt.payload_len and pkt.subflow_id == 1:
                pkt.dropped = True
                return
            original(pkt)

        ab.deliver = gate
        sim.run(until=msec(3) + usec(50))
        client.set_active_tdn(0)
        server.set_active_tdn(0)
        sim.run(until=msec(12))
        assert client.subflows[1].gated_rtos >= 1
        assert client.subflows[1].paths[0].cc.cwnd <= 2
        assert client.stats.reinjections >= 1
        # The data stream survived the loss via the other subflow.
        assert server.data_rcv.ooo_bytes == 0

    def test_reinjection_makes_progress(self):
        """Data stuck on the gated subflow is reinjected on the active
        one and the data-level stream keeps advancing."""
        sim, a, b, _ab, _ba = two_hosts()
        client, server = mptcp_pair(sim, a, b)
        client.start_bulk()
        sim.run(until=msec(2))
        client.set_active_tdn(1)
        server.set_active_tdn(1)
        sim.run(until=msec(3))
        client.set_active_tdn(0)
        server.set_active_tdn(0)
        delivered_at_switch = server.stats.bytes_delivered
        sim.run(until=msec(12))
        assert server.stats.bytes_delivered > delivered_at_switch
        assert client.stats.reinjected_bytes > 0


class TestNotificationIntegration:
    def test_parent_follows_notifications(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, _server = create_mptcp_pair(sim, a, b, subscribe_notifications=True)
        sim.run(until=msec(1))
        a.deliver(TDNNotification("tor", a.address, tdn_id=1))
        sim.run(until=msec(1) + usec(10))
        assert client.scheduler.active_tdn == 1

    def test_snapshot(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, _server = mptcp_pair(sim, a, b)
        sim.run(until=msec(1))
        snap = client.snapshot()
        assert snap["active_tdn"] == 0
        assert len(snap["subflows"]) == 2
