"""pcap export: the file must parse as a valid capture."""

import struct

import pytest

from repro.core.tdtcp import TDTCPConnection
from repro.net.capture import PacketCapture
from repro.net.packet import Packet, TCPSegment
from repro.net.pcap import (
    EXPERIMENTAL_OPTION_KIND,
    PCAP_MAGIC,
    write_pcap,
)
from repro.sim import Simulator
from repro.tcp.sockets import create_connection_pair
from repro.units import msec

from tests.helpers import two_hosts


def parse_pcap(path):
    """Minimal pcap reader: returns (header, [(ts_us, frame_bytes)])."""
    blob = open(path, "rb").read()
    magic, major, minor, _tz, _sig, snaplen, linktype = struct.unpack("<IHHiIII", blob[:24])
    assert magic == PCAP_MAGIC
    offset = 24
    frames = []
    while offset < len(blob):
        sec, usec_, caplen, origlen = struct.unpack("<IIII", blob[offset:offset + 16])
        offset += 16
        frames.append((sec * 1_000_000 + usec_, blob[offset:offset + caplen]))
        offset += caplen
    return (major, minor, snaplen, linktype), frames


class TestPcapFormat:
    def test_header_and_record_framing(self, tmp_path):
        sim = Simulator()
        capture = PacketCapture(sim)
        capture.observe(Packet("r0h0", "r1h0", 100))
        sim.now = 2_500_000  # 2.5 ms
        capture.observe(TCPSegment("r0h0", "r1h0", 10, 20, seq=5, payload_len=10))
        path = tmp_path / "out.pcap"
        assert write_pcap(capture, path) == 2
        (major, minor, snaplen, linktype), frames = parse_pcap(path)
        assert (major, minor) == (2, 4)
        assert linktype == 1
        assert len(frames) == 2
        assert frames[1][0] == 2_500  # microseconds

    def test_ethernet_and_ip_headers(self, tmp_path):
        sim = Simulator()
        capture = PacketCapture(sim)
        capture.observe(TCPSegment("r0h3", "r1h7", 1000, 2000, seq=42, payload_len=100))
        path = tmp_path / "out.pcap"
        write_pcap(capture, path)
        _header, frames = parse_pcap(path)
        frame = frames[0][1]
        assert frame[12:14] == b"\x08\x00"  # EtherType IPv4
        ip = frame[14:]
        assert ip[0] == 0x45  # IPv4, 20-byte header
        assert ip[9] == 6     # protocol TCP
        assert ip[12:16] == bytes([10, 0, 0, 3])  # 10.rack.0.host
        assert ip[16:20] == bytes([10, 1, 0, 7])

    def test_tcp_header_fields(self, tmp_path):
        sim = Simulator()
        capture = PacketCapture(sim)
        seg = TCPSegment("r0h0", "r1h0", 1234, 5678, seq=1_000, ack=2_000,
                         is_ack=True, payload_len=0)
        capture.observe(seg)
        path = tmp_path / "out.pcap"
        write_pcap(capture, path)
        _h, frames = parse_pcap(path)
        tcp = frames[0][1][14 + 20:]
        sport, dport, seq, ack = struct.unpack("!HHII", tcp[:12])
        assert (sport, dport, seq, ack) == (1234, 5678, 1_000, 2_000)
        flags = tcp[13]
        assert flags & 0x10  # ACK bit

    def test_tdtcp_options_encoded(self, tmp_path):
        sim = Simulator()
        capture = PacketCapture(sim)
        syn = TCPSegment("r0h0", "r1h0", 1, 2, syn=True)
        syn.td_capable_tdns = 2
        data = TCPSegment("r0h0", "r1h0", 1, 2, payload_len=100)
        data.data_tdn = 1
        capture.observe(syn)
        capture.observe(data)
        path = tmp_path / "out.pcap"
        write_pcap(capture, path)
        _h, frames = parse_pcap(path)
        syn_tcp = frames[0][1][34:]
        options = syn_tcp[20:]
        assert options[0] == EXPERIMENTAL_OPTION_KIND
        assert options[2] == 0  # TD_CAPABLE subtype
        assert options[3] == 2  # num_tdns
        data_tcp = frames[1][1][34:]
        options = data_tcp[20:]
        assert options[0] == EXPERIMENTAL_OPTION_KIND
        assert options[2] == 1  # TD_DATA_ACK subtype
        assert options[4] == 1  # data_tdn

    def test_live_capture_roundtrip(self, tmp_path):
        sim, a, b, ab, _ba = two_hosts()
        capture = PacketCapture(sim, max_records=200)
        ab.deliver = capture.tap(ab.deliver)
        client, _server = create_connection_pair(
            sim, a, b, connection_cls=TDTCPConnection, tdn_count=2
        )
        client.start_bulk()
        sim.run(until=msec(1))
        path = tmp_path / "flow.pcap"
        written = write_pcap(capture, path)
        assert written == len(capture)
        _h, frames = parse_pcap(path)
        assert len(frames) == written
        # Timestamps are non-decreasing.
        times = [t for t, _f in frames]
        assert times == sorted(times)
