"""Shared fixtures/builders for the test suite."""

from __future__ import annotations

from typing import Optional, Tuple, Type

from repro.net.link import Link
from repro.net.node import Host
from repro.rdcn.config import NotifierConfig, RDCNConfig
from repro.sim.simulator import Simulator
from repro.tcp.config import TCPConfig
from repro.tcp.connection import TCPConnection
from repro.tcp.sockets import create_connection_pair
from repro.units import gbps, msec, usec


def two_hosts(
    sim: Optional[Simulator] = None,
    rate_bps: float = gbps(10),
    one_way_ns: int = usec(20),
    forward_queue: Optional[int] = None,
    reverse_queue: Optional[int] = None,
) -> Tuple[Simulator, Host, Host, Link, Link]:
    """Two hosts joined by one link in each direction."""
    sim = sim or Simulator()
    a = Host(sim, "r0h0")
    b = Host(sim, "r1h0")
    ab = Link(sim, rate_bps, one_way_ns, b.deliver, queue_capacity=forward_queue, name="ab")
    ba = Link(sim, rate_bps, one_way_ns, a.deliver, queue_capacity=reverse_queue, name="ba")
    a.attach_egress(ab)
    b.attach_egress(ba)
    return sim, a, b, ab, ba


def bulk_pair(
    sim: Simulator,
    a: Host,
    b: Host,
    cc_name: str = "cubic",
    config: Optional[TCPConfig] = None,
    connection_cls: Type[TCPConnection] = TCPConnection,
    **kwargs,
) -> Tuple[TCPConnection, TCPConnection]:
    """Connected endpoints with an endless sending application."""
    client, server = create_connection_pair(
        sim, a, b, cc_name=cc_name, config=config or TCPConfig(), connection_cls=connection_cls, **kwargs
    )
    client.start_bulk()
    return client, server


def small_rdcn(
    n_hosts: int = 2,
    night_policy: str = "slowdown",
    seed: int = 7,
) -> RDCNConfig:
    """A scaled-down RDCN for fast integration tests."""
    return RDCNConfig(
        n_hosts_per_rack=n_hosts,
        host_link_rate_bps=gbps(100 / max(n_hosts, 1) / 2),
        notifier=NotifierConfig(night_policy=night_policy),
        seed=seed,
    )


def run_for(sim: Simulator, duration_ns: int) -> None:
    sim.run(until=sim.now + duration_ns)
