"""TDTCP building blocks: per-TDN state, reordering filter, RTT rules,
options/negotiation."""

import pytest

from repro.core.reordering import suspect_cross_tdn_reordering
from repro.core.rtt import classify_rtt_sample, pessimistic_rto_ns
from repro.core.tdn_state import PerTDNState
from repro.tcp.config import TCPConfig
from repro.tcp.connection import PathState
from repro.tcp.options import (
    MAX_SACK_BLOCKS,
    MAX_TDNS,
    clip_sack_blocks,
    negotiate_td_capable,
)
from repro.units import msec, usec


class FakeClock:
    def now_ns(self):
        return 0


def make_state(n=2):
    cfg = TCPConfig()
    return PerTDNState(lambda i: PathState(FakeClock(), "cubic", cfg, tdn_id=i), n)


class TestPerTDNState:
    def test_initial_count(self):
        state = make_state(3)
        assert len(state) == 3
        assert state.current_index == 0
        assert [p.tdn_id for p in state.paths] == [0, 1, 2]

    def test_switch(self):
        state = make_state(2)
        assert state.switch_to(1) is True
        assert state.current.tdn_id == 1
        assert state.switches == 1

    def test_switch_noop(self):
        state = make_state(2)
        assert state.switch_to(0) is False
        assert state.switches == 0

    def test_switch_preserves_checkpoint(self):
        """§3.1: the inactive set is a snapshot, resumed unchanged."""
        state = make_state(2)
        state.current.cc.cwnd = 55.0
        state.switch_to(1)
        state.current.cc.cwnd = 7.0
        state.switch_to(0)
        assert state.current.cc.cwnd == 55.0
        state.switch_to(1)
        assert state.current.cc.cwnd == 7.0

    def test_grows_on_new_tdn(self):
        state = make_state(2)
        state.switch_to(4)
        assert len(state) == 5
        assert state.current.tdn_id == 4

    def test_all_tdns_semantic(self):
        state = make_state(3)
        state.paths[0].packets_out = 2
        state.paths[2].packets_out = 5
        assert state.total_packets_out() == 7

    def test_any_tdn_semantic(self):
        state = make_state(2)
        assert not state.any_loss_pending()
        state.paths[1].lost_out = 1
        assert state.any_loss_pending()

    def test_specific_tdn_clamped(self):
        state = make_state(2)
        assert state.path_for_tdn(1).tdn_id == 1
        assert state.path_for_tdn(9).tdn_id == 0  # out of range -> 0

    def test_slowest_srtt(self):
        state = make_state(2)
        state.paths[0].rtt.update(usec(100))
        state.paths[1].rtt.update(usec(40))
        assert state.slowest_srtt_ns() == usec(100)

    def test_needs_at_least_one(self):
        with pytest.raises(ValueError):
            make_state(0)


class TestRelaxedReordering:
    def test_same_tdn_is_loss_candidate(self):
        assert not suspect_cross_tdn_reordering(1, 1, 100, 500)

    def test_cross_tdn_before_pointer_exempted(self):
        assert suspect_cross_tdn_reordering(0, 1, 100, 500)

    def test_cross_tdn_after_pointer_not_exempted(self):
        assert not suspect_cross_tdn_reordering(0, 1, 900, 500)

    def test_untagged_ack_never_exempts(self):
        assert not suspect_cross_tdn_reordering(0, None, 100, 500)


class TestRTTRules:
    def test_classification(self):
        assert classify_rtt_sample(0, 0) == "matched"
        assert classify_rtt_sample(1, 1) == "matched"
        assert classify_rtt_sample(0, 1) == "crossed"
        assert classify_rtt_sample(1, None) == "matched"

    def _paths(self):
        cfg = TCPConfig()
        paths = [PathState(FakeClock(), "cubic", cfg, tdn_id=i) for i in range(2)]
        return paths

    def test_pessimistic_rto_uses_slowest(self):
        paths = self._paths()
        for _ in range(10):
            paths[0].rtt.update(usec(100))
            paths[1].rtt.update(usec(40))
        # Sending on the fast TDN still assumes the slow return path:
        # synth = 40/2 + 100/2 = 70 us (plus variance, clamped to floor).
        rto_fast = pessimistic_rto_ns(paths, 1, usec(10), msec(500), msec(2))
        rto_slow = pessimistic_rto_ns(paths, 0, usec(10), msec(500), msec(2))
        assert rto_fast >= usec(70)
        assert rto_slow >= rto_fast  # 100/2 + 100/2 = 100 us synth

    def test_pessimistic_rto_without_samples(self):
        paths = self._paths()
        assert pessimistic_rto_ns(paths, 0, msec(1), msec(500), msec(2)) == msec(2)

    def test_pessimistic_rto_partial_samples(self):
        paths = self._paths()
        paths[0].rtt.update(usec(100))
        rto = pessimistic_rto_ns(paths, 1, usec(10), msec(500), msec(2))
        assert rto >= usec(100)  # falls back to the slowest TDN


class TestTDCapableNegotiation:
    def test_agreement(self):
        assert negotiate_td_capable(2, 2) == 2

    def test_mismatch_downgrades(self):
        assert negotiate_td_capable(2, 3) is None

    def test_absence_downgrades(self):
        assert negotiate_td_capable(2, None) is None
        assert negotiate_td_capable(None, 2) is None

    def test_bounds(self):
        assert negotiate_td_capable(0, 0) is None
        assert negotiate_td_capable(MAX_TDNS + 1, MAX_TDNS + 1) is None
        assert negotiate_td_capable(MAX_TDNS, MAX_TDNS) == MAX_TDNS

    def test_sack_clipping(self):
        blocks = tuple((i, i + 1) for i in range(6))
        assert len(clip_sack_blocks(blocks)) == MAX_SACK_BLOCKS
