"""RangeSet: unit and property-based tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcp.ranges import RangeSet


class TestRangeSetBasics:
    def test_empty(self):
        rs = RangeSet()
        assert not rs
        assert rs.coverage() == 0
        assert rs.ranges() == []

    def test_single_add(self):
        rs = RangeSet()
        assert rs.add(10, 20) == (10, 20)
        assert rs.ranges() == [(10, 20)]
        assert rs.coverage() == 10

    def test_empty_range_ignored(self):
        rs = RangeSet()
        rs.add(5, 5)
        assert not rs

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            RangeSet().add(10, 5)

    def test_merge_overlapping(self):
        rs = RangeSet([(0, 10), (5, 15)])
        assert rs.ranges() == [(0, 15)]

    def test_merge_adjacent(self):
        rs = RangeSet([(0, 10), (10, 20)])
        assert rs.ranges() == [(0, 20)]

    def test_disjoint_stay_separate(self):
        rs = RangeSet([(0, 10), (20, 30)])
        assert rs.ranges() == [(0, 10), (20, 30)]

    def test_bridge_merge(self):
        rs = RangeSet([(0, 10), (20, 30)])
        merged = rs.add(8, 22)
        assert merged == (0, 30)
        assert rs.ranges() == [(0, 30)]

    def test_contains_point(self):
        rs = RangeSet([(10, 20)])
        assert rs.contains_point(10)
        assert rs.contains_point(19)
        assert not rs.contains_point(20)
        assert not rs.contains_point(9)

    def test_covers(self):
        rs = RangeSet([(0, 10), (20, 30)])
        assert rs.covers(2, 8)
        assert rs.covers(0, 10)
        assert not rs.covers(5, 25)
        assert rs.covers(7, 7)  # empty range trivially covered

    def test_remove_below(self):
        rs = RangeSet([(0, 10), (20, 30)])
        rs.remove_below(5)
        assert rs.ranges() == [(5, 10), (20, 30)]
        rs.remove_below(15)
        assert rs.ranges() == [(20, 30)]
        rs.remove_below(100)
        assert rs.ranges() == []

    def test_first_range_at_or_after(self):
        rs = RangeSet([(0, 10), (20, 30)])
        assert rs.first_range_at_or_after(0) == (0, 10)
        assert rs.first_range_at_or_after(15) == (20, 30)
        with pytest.raises(LookupError):
            rs.first_range_at_or_after(30)

    def test_gaps_between(self):
        rs = RangeSet([(10, 20), (30, 40)])
        assert rs.gaps_between(0, 50) == [(0, 10), (20, 30), (40, 50)]
        assert rs.gaps_between(10, 40) == [(20, 30)]
        assert rs.gaps_between(12, 18) == []
        assert RangeSet().gaps_between(0, 5) == [(0, 5)]

    def test_equality(self):
        assert RangeSet([(0, 5)]) == RangeSet([(0, 3), (3, 5)])


ranges_strategy = st.lists(
    st.tuples(st.integers(0, 300), st.integers(1, 40)).map(lambda t: (t[0], t[0] + t[1])),
    min_size=0,
    max_size=25,
)


class TestRangeSetProperties:
    @given(ranges_strategy)
    @settings(max_examples=200)
    def test_invariants_sorted_disjoint_nonempty(self, ranges):
        rs = RangeSet(ranges)
        out = rs.ranges()
        for start, end in out:
            assert start < end
        for (s1, e1), (s2, e2) in zip(out, out[1:]):
            assert e1 < s2  # disjoint and non-adjacent

    @given(ranges_strategy)
    @settings(max_examples=200)
    def test_coverage_matches_set_semantics(self, ranges):
        rs = RangeSet(ranges)
        expected = set()
        for start, end in ranges:
            expected.update(range(start, end))
        assert rs.coverage() == len(expected)
        for point in list(expected)[:50]:
            assert rs.contains_point(point)

    @given(ranges_strategy, st.integers(0, 340))
    @settings(max_examples=200)
    def test_remove_below_drops_exactly(self, ranges, threshold):
        rs = RangeSet(ranges)
        expected = set()
        for start, end in ranges:
            expected.update(range(start, end))
        rs.remove_below(threshold)
        kept = {p for p in expected if p >= threshold}
        assert rs.coverage() == len(kept)

    @given(ranges_strategy)
    @settings(max_examples=100)
    def test_insertion_order_irrelevant(self, ranges):
        forward = RangeSet(ranges)
        backward = RangeSet(reversed(ranges))
        assert forward == backward

    @given(ranges_strategy, st.integers(0, 340), st.integers(0, 340))
    @settings(max_examples=200)
    def test_gaps_partition_interval(self, ranges, a, b):
        start, end = min(a, b), max(a, b)
        rs = RangeSet(ranges)
        gaps = rs.gaps_between(start, end)
        # Gaps plus covered points partition [start, end).
        covered = set()
        for r_start, r_end in rs.ranges():
            covered.update(range(max(r_start, start), min(r_end, end)))
        gap_points = set()
        for g_start, g_end in gaps:
            gap_points.update(range(g_start, g_end))
        assert covered | gap_points == set(range(start, end))
        assert covered & gap_points == set()


class _LinearRangeSet:
    """The pre-bisect RangeSet (sorted list, linear merge), embedded
    verbatim as the differential-testing oracle. Kept deliberately
    independent of :mod:`repro.tcp.ranges` so a bug in the bisect
    version cannot hide in a shared helper."""

    def __init__(self, ranges=()):
        self._ranges = []
        for start, end in ranges:
            self.add(start, end)

    def add(self, start, end):
        if start > end:
            raise ValueError(f"invalid range [{start}, {end})")
        if start == end:
            return (start, end)
        merged_start, merged_end = start, end
        out = []
        inserted = False
        for r_start, r_end in self._ranges:
            if r_end < merged_start or r_start > merged_end:
                if r_start > merged_end and not inserted:
                    out.append((merged_start, merged_end))
                    inserted = True
                out.append((r_start, r_end))
            else:
                merged_start = min(merged_start, r_start)
                merged_end = max(merged_end, r_end)
        if not inserted:
            out.append((merged_start, merged_end))
        out.sort()
        self._ranges = out
        return (merged_start, merged_end)

    def remove_below(self, threshold):
        out = []
        for start, end in self._ranges:
            if end <= threshold:
                continue
            out.append((max(start, threshold), end))
        self._ranges = out

    def contains_point(self, value):
        for start, end in self._ranges:
            if start <= value < end:
                return True
            if start > value:
                break
        return False

    def covers(self, start, end):
        if start >= end:
            return True
        for r_start, r_end in self._ranges:
            if r_start <= start and end <= r_end:
                return True
            if r_start > start:
                break
        return False

    def first_range_at_or_after(self, value):
        for start, end in self._ranges:
            if end > value:
                return (start, end)
        raise LookupError(f"no range at or after {value}")

    def coverage(self):
        return sum(end - start for start, end in self._ranges)

    def ranges(self):
        return list(self._ranges)

    def gaps_between(self, start, end):
        gaps = []
        cursor = start
        for r_start, r_end in self._ranges:
            if r_end <= cursor:
                continue
            if r_start >= end:
                break
            if r_start > cursor:
                gaps.append((cursor, min(r_start, end)))
            cursor = max(cursor, r_end)
            if cursor >= end:
                break
        if cursor < end:
            gaps.append((cursor, end))
        return gaps


class TestRangeSetDifferential:
    """Seeded randomized differential test: the bisect RangeSet must
    agree with the old linear implementation on every operation of a
    10k-op random program (the tentpole swapped the implementation;
    this pins the behaviour)."""

    SPAN = 4000  # small coordinate space forces heavy merging

    @pytest.mark.parametrize("seed", [1, 7, 20260806])
    def test_10k_random_ops(self, seed):
        import random

        rng = random.Random(seed)
        fast = RangeSet()
        slow = _LinearRangeSet()
        span = self.SPAN
        for op_index in range(10_000):
            roll = rng.random()
            if roll < 0.55:
                a = rng.randrange(span)
                b = a + rng.randrange(0, 60)
                assert fast.add(a, b) == slow.add(a, b)
            elif roll < 0.65:
                t = rng.randrange(span)
                fast.remove_below(t)
                slow.remove_below(t)
            elif roll < 0.80:
                a = rng.randrange(span)
                b = a + rng.randrange(0, 80)
                assert fast.covers(a, b) == slow.covers(a, b)
                assert fast.contains_point(a) == slow.contains_point(a)
            elif roll < 0.92:
                a = rng.randrange(span)
                b = a + rng.randrange(0, 200)
                assert fast.gaps_between(a, b) == slow.gaps_between(a, b)
            else:
                v = rng.randrange(span)
                try:
                    expected = slow.first_range_at_or_after(v)
                except LookupError:
                    with pytest.raises(LookupError):
                        fast.first_range_at_or_after(v)
                else:
                    assert fast.first_range_at_or_after(v) == expected
            # Full-state agreement after every mutation is what makes a
            # divergence bisectable to the op that introduced it.
            assert fast.ranges() == slow.ranges(), f"divergence at op {op_index}"
            assert fast.coverage() == slow.coverage(), f"coverage drift at op {op_index}"
