"""Packet capture and the TDTCP dissector."""

import pytest

from repro.core.tdtcp import TDTCPConnection
from repro.net.capture import CaptureRecord, PacketCapture, dissect
from repro.net.packet import Packet, TCPSegment, TDNNotification
from repro.sim import Simulator
from repro.tcp.sockets import create_connection_pair
from repro.units import msec

from tests.helpers import two_hosts


class TestDissect:
    def test_data_segment(self):
        seg = TCPSegment("r0h0", "r1h0", 10, 20, seq=3000, payload_len=1500)
        seg.data_tdn = 1
        text = dissect(seg)
        assert "TCP r0h0:10 -> r1h0:20" in text
        assert "seq=3000" in text
        assert "len=1500" in text
        assert "data_tdn=1" in text

    def test_pure_ack_with_sack(self):
        ack = TCPSegment("r1h0", "r0h0", 20, 10, ack=4500, is_ack=True)
        ack.sack_blocks = ((6000, 7500),)
        ack.ack_tdn = 0
        text = dissect(ack)
        assert "[A]" in text
        assert "ack=4500" in text
        assert "SACK{6000-7500}" in text
        assert "ack_tdn=0" in text

    def test_syn_with_td_capable(self):
        syn = TCPSegment("a", "b", 1, 2, syn=True)
        syn.td_capable_tdns = 2
        text = dissect(syn)
        assert "[S]" in text
        assert "TD_CAPABLE{num_tdns=2}" in text

    def test_notification(self):
        note = TDNNotification("tor0", "r0h0", tdn_id=1)
        assert "ICMP TDN-change" in dissect(note)
        assert "active TDN ID: 1" in dissect(note)

    def test_raw_packet(self):
        assert "RAW" in dissect(Packet("a", "b", 100))

    def test_circuit_mark_and_dss(self):
        seg = TCPSegment("a", "b", 1, 2, payload_len=100)
        seg.circuit_mark = True
        seg.dss_seq = 7
        seg.subflow_id = 1
        text = dissect(seg)
        assert "CIRCUIT-MARK" in text
        assert "DSS{seq=7}" in text
        assert "subflow=1" in text


class TestPacketCapture:
    def test_tap_records_and_forwards(self):
        sim = Simulator()
        capture = PacketCapture(sim)
        delivered = []
        deliver = capture.tap(delivered.append)
        pkt = Packet("a", "b", 100)
        deliver(pkt)
        assert delivered == [pkt]
        assert len(capture) == 1
        assert capture.records[0].packet is pkt

    def test_predicate_filters(self):
        sim = Simulator()
        capture = PacketCapture(sim, predicate=lambda p: isinstance(p, TCPSegment))
        capture.observe(Packet("a", "b", 100))
        capture.observe(TCPSegment("a", "b", 1, 2))
        assert len(capture) == 1

    def test_max_records(self):
        sim = Simulator()
        capture = PacketCapture(sim, max_records=2)
        for _ in range(5):
            capture.observe(Packet("a", "b", 1))
        assert len(capture) == 2
        assert capture.dropped_records == 3

    def test_live_tdtcp_capture(self):
        """Capture a real TDTCP transfer and check the dissector's view."""
        sim, a, b, ab, _ba = two_hosts()
        capture = PacketCapture(sim)
        ab.deliver = capture.tap(ab.deliver)
        client, server = create_connection_pair(
            sim, a, b, connection_cls=TDTCPConnection, tdn_count=2
        )
        client.start_bulk()
        sim.run(until=msec(2))
        assert capture.data_segments()
        # The SYN carried the TD_CAPABLE option.
        syn_texts = [str(r) for r in capture.records if getattr(r.packet, "syn", False)]
        assert any("TD_CAPABLE{num_tdns=2}" in t for t in syn_texts)
        # Data segments carry the TDN tag.
        assert any(
            "data_tdn=0" in dissect(r.packet) for r in capture.data_segments()
        )
        summary = capture.summary()
        assert "data" in summary and "TDN 0" in summary

    def test_render_limits(self):
        sim = Simulator()
        capture = PacketCapture(sim)
        for _ in range(5):
            capture.observe(Packet("a", "b", 1))
        text = capture.render(limit=2)
        assert "3 more" in text
