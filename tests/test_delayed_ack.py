"""Delayed ACKs (RFC 1122): optional coalescing of receiver ACKs."""

import pytest

from repro.tcp.config import TCPConfig
from repro.tcp.sockets import create_connection_pair
from repro.units import msec, usec

from tests.helpers import bulk_pair, two_hosts


def count_acks(sim, ba):
    acks = []
    original = ba.deliver
    ba.deliver = lambda p: (
        acks.append(sim.now) if p.is_ack and p.payload_len == 0 else None,
        original(p),
    )
    return acks


class TestDelayedAck:
    def test_disabled_by_default_acks_every_segment(self):
        sim, a, b, _ab, ba = two_hosts()
        acks = count_acks(sim, ba)
        client, server = create_connection_pair(sim, a, b)
        client.write(15_000)  # 10 segments
        sim.run(until=msec(5))
        assert len(acks) >= 10

    def test_enabled_halves_ack_count(self):
        sim, a, b, _ab, ba = two_hosts()
        acks = count_acks(sim, ba)
        cfg = TCPConfig(delayed_ack_ns=usec(500))
        client, server = create_connection_pair(sim, a, b, config=cfg)
        client.write(15_000)
        sim.run(until=msec(5))
        # Roughly every other segment plus the handshake ACK.
        assert len(acks) <= 8

    def test_timeout_flushes_odd_segment(self):
        sim, a, b, _ab, ba = two_hosts()
        acks = count_acks(sim, ba)
        cfg = TCPConfig(delayed_ack_ns=usec(500))
        client, server = create_connection_pair(sim, a, b, config=cfg)
        client.write(1_500)  # a single segment: no pair to trigger an ACK
        sim.run(until=msec(5))
        assert acks  # the delack timer flushed it
        assert client.snd_una == client.snd_nxt

    def test_out_of_order_acked_immediately(self):
        """Dup-ACK feedback must not be delayed — fast retransmit
        depends on it."""
        sim, a, b, ab, _ba = two_hosts()
        dropped = []
        original = ab.deliver

        def drop_one(pkt):
            if pkt.payload_len and pkt.seq == 1 + 1500 * 5 and not dropped:
                dropped.append(pkt.seq)
                pkt.dropped = True
                return
            original(pkt)

        ab.deliver = drop_one
        cfg = TCPConfig(delayed_ack_ns=usec(500))
        client, server = bulk_pair(sim, a, b, config=cfg)
        sim.run(until=msec(10))
        assert dropped
        assert client.stats.rtos == 0  # recovered via fast feedback
        assert server.recv_buffer.ooo_bytes == 0

    def test_bulk_throughput_unaffected(self):
        sim, a, b, _ab, _ba = two_hosts()
        cfg = TCPConfig(delayed_ack_ns=usec(500))
        client, server = bulk_pair(sim, a, b, config=cfg)
        sim.run(until=msec(20))
        from repro.units import throughput_gbps

        assert throughput_gbps(server.stats.bytes_delivered, msec(20)) > 8.5
