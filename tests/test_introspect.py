"""ss-style connection introspection."""

import pytest

from repro.core.tdtcp import TDTCPConnection
from repro.tcp.introspect import _format_bytes, describe_connection, socket_summary
from repro.tcp.sockets import create_connection_pair
from repro.units import msec

from tests.helpers import bulk_pair, two_hosts


class TestFormatBytes:
    def test_small_units(self):
        assert _format_bytes(512) == "512B"
        assert _format_bytes(30_000) == "29.3KB"
        assert _format_bytes(5 * 1024**3) == "5.0GB"

    def test_terabytes_not_mislabeled_as_gb(self):
        # Regression: >= 1 TB used to fall out of the loop with the
        # value already divided down but still labeled GB.
        assert _format_bytes(1024**4) == "1.0TB"
        assert _format_bytes(3 * 1024**4 + 1024**3) == "3.0TB"
        assert _format_bytes(2048 * 1024**4) == "2048.0TB"


class TestDescribe:
    def test_plain_tcp_fields(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = bulk_pair(sim, a, b)
        sim.run(until=msec(5))
        text = describe_connection(client)
        assert "established" in text
        assert f"{a.address}:{client.local_port}" in text
        assert "cwnd:" in text
        assert "bytes_acked:" in text
        assert "tdn:" not in text  # single path: no TDN labels

    def test_tdtcp_shows_per_tdn_lines(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = create_connection_pair(
            sim, a, b, connection_cls=TDTCPConnection, tdn_count=2
        )
        client.start_bulk()
        sim.run(until=msec(5))
        text = describe_connection(client)
        assert "tdn:0" in text and "tdn:1" in text
        assert "current_tdn:0" in text
        assert "switches:" in text

    def test_receiver_side_counts(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = create_connection_pair(sim, a, b)
        client.write(30_000)
        sim.run(until=msec(5))
        text = describe_connection(server)
        assert "bytes_received:29.3KB" in text

    def test_per_path_telemetry_fields(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = bulk_pair(sim, a, b)
        sim.run(until=msec(5))
        text = describe_connection(client)
        # ACKs have flowed, so the path carries a delivery-rate EWMA and
        # a last-cwnd-update stamp.
        assert "delivery_rate:" in text
        assert "last_cwnd_update:" in text
        path = client.current_path
        assert path.delivery_rate_bps > 0
        assert path.last_cwnd_update_ns is not None
        assert path.last_cwnd_update_ns <= sim.now

    def test_last_retransmit_only_after_retransmission(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = bulk_pair(sim, a, b)
        sim.run(until=msec(5))
        text = describe_connection(client)
        if client.stats.retransmissions == 0:
            assert "last_retransmit:" not in text

    def test_summary_lists_all(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = bulk_pair(sim, a, b)
        sim.run(until=msec(2))
        text = socket_summary([client, server])
        assert text.count("established") >= 2

    def test_summary_empty(self):
        assert socket_summary([]) == "(no connections)"
