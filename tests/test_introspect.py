"""ss-style connection introspection."""

import pytest

from repro.core.tdtcp import TDTCPConnection
from repro.tcp.introspect import describe_connection, socket_summary
from repro.tcp.sockets import create_connection_pair
from repro.units import msec

from tests.helpers import bulk_pair, two_hosts


class TestDescribe:
    def test_plain_tcp_fields(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = bulk_pair(sim, a, b)
        sim.run(until=msec(5))
        text = describe_connection(client)
        assert "established" in text
        assert f"{a.address}:{client.local_port}" in text
        assert "cwnd:" in text
        assert "bytes_acked:" in text
        assert "tdn:" not in text  # single path: no TDN labels

    def test_tdtcp_shows_per_tdn_lines(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = create_connection_pair(
            sim, a, b, connection_cls=TDTCPConnection, tdn_count=2
        )
        client.start_bulk()
        sim.run(until=msec(5))
        text = describe_connection(client)
        assert "tdn:0" in text and "tdn:1" in text
        assert "current_tdn:0" in text
        assert "switches:" in text

    def test_receiver_side_counts(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = create_connection_pair(sim, a, b)
        client.write(30_000)
        sim.run(until=msec(5))
        text = describe_connection(server)
        assert "bytes_received:29.3KB" in text

    def test_summary_lists_all(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = bulk_pair(sim, a, b)
        sim.run(until=msec(2))
        text = socket_summary([client, server])
        assert text.count("established") >= 2

    def test_summary_empty(self):
        assert socket_summary([]) == "(no connections)"
