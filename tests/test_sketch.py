"""Quantile sketches and streaming stats: merge associativity, JSON
round trips, the relative-accuracy guarantee against exact numpy
quantiles, byte-stable serialization, and the registry's sketch
family."""

import json
import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry
from repro.obs.sketch import (
    DEFAULT_ALPHA,
    PERCENTILE_LABELS,
    QuantileSketch,
    StreamStats,
    sketch_from_samples,
)

# Positive magnitudes spanning the scales the simulator produces
# (sub-microsecond latencies in seconds up to giant byte counts).
values_st = st.floats(min_value=1e-6, max_value=1e12, allow_nan=False, allow_infinity=False)
samples_st = st.lists(values_st, min_size=1, max_size=200)


class TestStreamStats:
    def test_moments_match_numpy(self):
        rng = random.Random(7)
        data = [rng.uniform(0, 1000) for _ in range(500)]
        stats = StreamStats()
        for v in data:
            stats.add(v)
        assert stats.count == 500
        assert stats.minimum == min(data)
        assert stats.maximum == max(data)
        assert stats.mean == pytest.approx(np.mean(data))
        assert stats.variance == pytest.approx(np.var(data))

    @given(samples_st, samples_st)
    @settings(max_examples=50, deadline=None)
    def test_merge_equals_concatenation(self, a, b):
        left = StreamStats()
        for v in a:
            left.add(v)
        right = StreamStats()
        for v in b:
            right.add(v)
        both = StreamStats()
        for v in a + b:
            both.add(v)
        left.merge(right)
        assert left.count == both.count
        assert left.minimum == both.minimum
        assert left.maximum == both.maximum
        assert left.mean == pytest.approx(both.mean)
        assert left.variance == pytest.approx(both.variance, rel=1e-9, abs=1e-6)

    def test_merge_empty_either_side(self):
        stats = StreamStats()
        stats.add(4.0)
        empty = StreamStats()
        assert empty.merge(stats).to_dict() == stats.to_dict()
        assert stats.merge(StreamStats()).count == 1

    @given(samples_st)
    @settings(max_examples=50, deadline=None)
    def test_round_trip(self, samples):
        stats = StreamStats()
        for v in samples:
            stats.add(v)
        assert StreamStats.from_dict(json.loads(json.dumps(stats.to_dict()))) == stats


class TestQuantileSketch:
    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            QuantileSketch(alpha=0.0)
        with pytest.raises(ValueError):
            QuantileSketch(alpha=1.0)
        with pytest.raises(ValueError):
            QuantileSketch(min_value=0.0)
        with pytest.raises(ValueError):
            QuantileSketch().add(-1.0)
        with pytest.raises(ValueError):
            QuantileSketch().quantile(1.5)

    def test_empty_sketch(self):
        sketch = QuantileSketch()
        assert sketch.count == 0
        assert sketch.quantile(0.5) is None
        assert sketch.percentiles() == {label: None for label, _q in PERCENTILE_LABELS}

    def test_zero_and_tiny_values(self):
        sketch = QuantileSketch(min_value=1e-9)
        sketch.add(0.0)
        sketch.add(1e-12)
        sketch.add(5.0)
        assert sketch.zero_count == 2
        assert sketch.count == 3
        assert sketch.quantile(0.25) == 0.0
        assert sketch.quantile(1.0) == 5.0

    def test_merge_shape_mismatch(self):
        with pytest.raises(ValueError):
            QuantileSketch(alpha=0.01).merge(QuantileSketch(alpha=0.02))

    @given(samples_st)
    @settings(max_examples=50, deadline=None)
    def test_relative_accuracy_vs_numpy(self, samples):
        alpha = DEFAULT_ALPHA
        sketch = sketch_from_samples(samples, alpha=alpha)
        ordered = np.sort(np.asarray(samples, dtype=float))
        n = len(ordered)
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            estimate = sketch.quantile(q)
            rank = q * (n - 1)
            lo = ordered[math.floor(rank)]
            hi = ordered[math.ceil(rank)]
            # The DDSketch contract: within relative alpha of a value
            # adjacent to the exact order statistic (eps covers float
            # rounding at the bucket boundary).
            eps = 1e-9
            assert estimate >= lo * (1.0 - alpha - eps)
            assert estimate <= hi * (1.0 + alpha + eps)

    def test_p50_p99_bound_on_lognormal_fcts(self):
        # The acceptance-criteria check in miniature: a heavy-tailed
        # FCT-like sample, sketch p50/p99 vs exact numpy quantiles.
        rng = np.random.default_rng(42)
        fcts = np.exp(rng.normal(5.0, 1.5, size=20_000))
        sketch = sketch_from_samples(fcts.tolist())
        for q in (0.5, 0.99):
            exact = float(np.quantile(fcts, q))
            assert abs(sketch.quantile(q) - exact) / exact <= 2 * DEFAULT_ALPHA

    @given(samples_st, samples_st, samples_st)
    @settings(max_examples=50, deadline=None)
    def test_merge_associative_and_commutative(self, a, b, c):
        def sk(values):
            return sketch_from_samples(values)

        left = sk(a).merge(sk(b)).merge(sk(c))
        right = sk(a).merge(sk(b).merge(sk(c)))
        swapped = sk(c).merge(sk(a)).merge(sk(b))
        # Integer bucket state is exactly associative and commutative…
        for other in (right, swapped):
            assert left.buckets == other.buckets
            assert left.zero_count == other.zero_count
            assert left.count == other.count
            assert left.stats.minimum == other.stats.minimum
            assert left.stats.maximum == other.stats.maximum
        # …so every quantile answer is, too.
        for q in (0.0, 0.5, 0.99, 1.0):
            assert left.quantile(q) == right.quantile(q) == swapped.quantile(q)

    @given(samples_st)
    @settings(max_examples=50, deadline=None)
    def test_json_round_trip(self, samples):
        sketch = sketch_from_samples(samples)
        restored = QuantileSketch.from_json(sketch.to_json())
        assert restored == sketch
        assert restored.quantile(0.9) == sketch.quantile(0.9)

    def test_byte_identical_serialization_across_seeded_runs(self):
        def build(seed):
            rng = random.Random(seed)
            sketch = QuantileSketch()
            for _ in range(1000):
                sketch.add(rng.expovariate(1.0 / 500.0))
            return sketch

        assert build(123).to_json() == build(123).to_json()
        assert build(123).to_json() != build(124).to_json()

    def test_constant_memory(self):
        sketch = QuantileSketch()
        rng = random.Random(1)
        for _ in range(50_000):
            sketch.add(rng.uniform(1.0, 1e9))
        # ~2100 buckets cover 9 decades at alpha=1%; the point is that
        # 50k samples did not produce 50k buckets.
        assert len(sketch.buckets) < 2500

    def test_from_dict_rejects_foreign_payload(self):
        with pytest.raises(ValueError):
            QuantileSketch.from_dict({"kind": "histogram"})


class TestSketchMetricFamily:
    def test_observe_and_snapshot_percentiles(self):
        registry = MetricsRegistry()
        family = registry.sketch("fct_us", labelnames=("variant",))
        for v in range(1, 101):
            family.observe(float(v), variant="tdtcp")
        assert family.count(variant="tdtcp") == 100
        snap = registry.snapshot()["fct_us"]
        assert snap["kind"] == "sketch"
        series = snap["series"][0]["value"]
        assert series["count"] == 100
        assert set(series["percentiles"]) == {label for label, _q in PERCENTILE_LABELS}
        assert series["percentiles"]["p50"] == pytest.approx(50, rel=0.05)
        # The full state rides along, so snapshots merge losslessly.
        assert QuantileSketch.from_dict(series["state"]).count == 100

    def test_get_or_create_and_shape_check(self):
        registry = MetricsRegistry()
        family = registry.sketch("x", alpha=0.02)
        assert registry.sketch("x", alpha=0.02) is family
        with pytest.raises(ValueError):
            registry.sketch("x", alpha=0.01)
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_merge_series_across_workers(self):
        worker_a = MetricsRegistry().sketch("lat", labelnames=("variant",))
        worker_b = MetricsRegistry().sketch("lat", labelnames=("variant",))
        for v in (1.0, 2.0, 3.0):
            worker_a.observe(v, variant="cubic")
        for v in (4.0, 5.0):
            worker_b.observe(v, variant="cubic")
            worker_b.observe(v, variant="tdtcp")
        worker_a.merge_series(worker_b)
        assert worker_a.count(variant="cubic") == 5
        assert worker_a.count(variant="tdtcp") == 2
        combined = worker_a.sketch(variant="cubic")
        assert combined == sketch_from_samples([1.0, 2.0, 3.0, 4.0, 5.0])
        with pytest.raises(ValueError):
            worker_a.merge_series(MetricsRegistry().sketch("lat", alpha=0.5))
