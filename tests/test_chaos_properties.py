"""Property-based chaos tests: random impairments must never corrupt
the stack's accounting or wedge a connection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tdtcp import TDTCPConnection
from repro.net.packet import TDNNotification
from repro.sim.rng import SeededRandom
from repro.tcp.config import TCPConfig
from repro.tcp.connection import TCPConnection
from repro.tcp.sockets import create_connection_pair
from repro.units import msec, usec

from tests.helpers import two_hosts


def chaos_run(
    connection_cls,
    loss_rate: float,
    delay_rate: float,
    switch_times_us,
    seed: int,
    duration_ms: int = 12,
    **kwargs,
):
    """A transfer through a link that randomly drops and delays, with
    TDN switches injected at the given times."""
    sim, a, b, ab, ba = two_hosts(one_way_ns=usec(20))
    rng = SeededRandom(seed)

    def impair(original):
        def deliver(pkt):
            if pkt.payload_len and rng.chance(loss_rate):
                pkt.dropped = True
                return
            if rng.chance(delay_rate):
                sim.schedule(rng.randint(1_000, 80_000), original, pkt)
                return
            original(pkt)

        return deliver

    ab.deliver = impair(ab.deliver)
    ba.deliver = impair(ba.deliver)
    client, server = create_connection_pair(
        sim, a, b, connection_cls=connection_cls,
        config=TCPConfig(min_rto_ns=usec(1_000)), **kwargs,
    )
    client.start_bulk()
    tdn = 0
    for t_us in switch_times_us:
        tdn = 1 - tdn
        sim.at(usec(t_us), a.deliver, TDNNotification("tor", a.address, tdn))
        sim.at(usec(t_us), b.deliver, TDNNotification("tor", b.address, tdn))
    sim.run(until=msec(duration_ms))
    return sim, client, server


switch_strategy = st.lists(
    st.integers(100, 10_000), min_size=0, max_size=8, unique=True
).map(sorted)


class TestChaosTCP:
    @given(
        loss=st.floats(0.0, 0.05),
        delay=st.floats(0.0, 0.05),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_plain_tcp_invariants_and_progress(self, loss, delay, seed):
        sim, client, server = chaos_run(TCPConnection, loss, delay, [], seed)
        client.check_invariants()
        server.check_invariants()
        assert server.stats.bytes_delivered > 0
        assert client.snd_una > 1  # made forward progress

    @given(
        loss=st.floats(0.0, 0.04),
        delay=st.floats(0.0, 0.04),
        switches=switch_strategy,
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_tdtcp_invariants_under_switch_chaos(self, loss, delay, switches, seed):
        sim, client, server = chaos_run(
            TDTCPConnection, loss, delay, switches, seed, tdn_count=2
        )
        client.check_invariants()
        server.check_invariants()
        assert server.stats.bytes_delivered > 0

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_heavy_loss_no_wedge(self, seed):
        """10% loss: brutal, but the connection must keep crawling."""
        sim, client, server = chaos_run(TCPConnection, 0.10, 0.0, [], seed, duration_ms=30)
        client.check_invariants()
        assert server.stats.bytes_delivered > 50_000

    def test_delivered_never_exceeds_sent(self):
        sim, client, server = chaos_run(TCPConnection, 0.02, 0.02, [], seed=7)
        assert server.stats.bytes_delivered <= client.stats.segments_sent * client.config.mss

    def test_ground_truth_spurious_subset_of_retransmissions(self):
        sim, client, server = chaos_run(TDTCPConnection, 0.02, 0.02, [500, 900], 3, tdn_count=2)
        assert client.stats.spurious_retransmissions <= client.stats.retransmissions
