"""Property-based chaos tests: random impairments must never corrupt
the stack's accounting or wedge a connection."""

import hashlib
import pathlib
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.bulk import BulkReceiver, BulkSender
from repro.core.tdtcp import TDTCPConnection
from repro.faults import FaultInjector, FaultPlan, FaultSpec, InvariantAuditor
from repro.net.packet import TDNNotification
from repro.obs.telemetry import ObsConfig
from repro.rdcn.topology import build_two_rack_testbed
from repro.sim.rng import SeededRandom
from repro.tcp.config import TCPConfig
from repro.tcp.connection import TCPConnection
from repro.tcp.sockets import create_connection_pair
from repro.units import msec, usec

from tests.helpers import small_rdcn, two_hosts


def chaos_run(
    connection_cls,
    loss_rate: float,
    delay_rate: float,
    switch_times_us,
    seed: int,
    duration_ms: int = 12,
    **kwargs,
):
    """A transfer through a link that randomly drops and delays, with
    TDN switches injected at the given times."""
    sim, a, b, ab, ba = two_hosts(one_way_ns=usec(20))
    rng = SeededRandom(seed)

    def impair(original):
        def deliver(pkt):
            if pkt.payload_len and rng.chance(loss_rate):
                pkt.dropped = True
                return
            if rng.chance(delay_rate):
                sim.schedule(rng.randint(1_000, 80_000), original, pkt)
                return
            original(pkt)

        return deliver

    ab.deliver = impair(ab.deliver)
    ba.deliver = impair(ba.deliver)
    client, server = create_connection_pair(
        sim, a, b, connection_cls=connection_cls,
        config=TCPConfig(min_rto_ns=usec(1_000)), **kwargs,
    )
    client.start_bulk()
    tdn = 0
    for t_us in switch_times_us:
        tdn = 1 - tdn
        sim.at(usec(t_us), a.deliver, TDNNotification("tor", a.address, tdn))
        sim.at(usec(t_us), b.deliver, TDNNotification("tor", b.address, tdn))
    sim.run(until=msec(duration_ms))
    return sim, client, server


switch_strategy = st.lists(
    st.integers(100, 10_000), min_size=0, max_size=8, unique=True
).map(sorted)


class TestChaosTCP:
    @given(
        loss=st.floats(0.0, 0.05),
        delay=st.floats(0.0, 0.05),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_plain_tcp_invariants_and_progress(self, loss, delay, seed):
        sim, client, server = chaos_run(TCPConnection, loss, delay, [], seed)
        client.check_invariants()
        server.check_invariants()
        assert server.stats.bytes_delivered > 0
        assert client.snd_una > 1  # made forward progress

    @given(
        loss=st.floats(0.0, 0.04),
        delay=st.floats(0.0, 0.04),
        switches=switch_strategy,
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_tdtcp_invariants_under_switch_chaos(self, loss, delay, switches, seed):
        sim, client, server = chaos_run(
            TDTCPConnection, loss, delay, switches, seed, tdn_count=2
        )
        client.check_invariants()
        server.check_invariants()
        assert server.stats.bytes_delivered > 0

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_heavy_loss_no_wedge(self, seed):
        """10% loss: brutal, but the connection must keep crawling."""
        sim, client, server = chaos_run(TCPConnection, 0.10, 0.0, [], seed, duration_ms=30)
        client.check_invariants()
        assert server.stats.bytes_delivered > 50_000

    def test_delivered_never_exceeds_sent(self):
        sim, client, server = chaos_run(TCPConnection, 0.02, 0.02, [], seed=7)
        assert server.stats.bytes_delivered <= client.stats.segments_sent * client.config.mss

    def test_ground_truth_spurious_subset_of_retransmissions(self):
        sim, client, server = chaos_run(TDTCPConnection, 0.02, 0.02, [500, 900], 3, tdn_count=2)
        assert client.stats.spurious_retransmissions <= client.stats.retransmissions


def faulted_testbed_run(plan: FaultPlan, seed: int, total_bytes: int = 100_000, weeks: int = 20):
    """Run two finite TDTCP flows across a two-rack testbed under a
    fault plan, with the invariant auditor watching everything."""
    rdcn = small_rdcn(n_hosts=2, seed=seed)
    testbed = build_two_rack_testbed(rdcn)
    injector = FaultInjector(testbed.sim, plan, testbed.rng)
    injector.arm_testbed(testbed)
    auditor = InvariantAuditor(testbed.sim, mode="warn", interval_ns=usec(100))
    receivers = []
    for index in range(2):
        client, server = create_connection_pair(
            testbed.sim,
            testbed.host(0, index),
            testbed.host(1, index),
            cc_name="cubic",
            config=TCPConfig(mss=rdcn.mss),
            connection_cls=TDTCPConnection,
            tdn_count=rdcn.n_tdns,
        )
        receivers.append(BulkReceiver(server))
        BulkSender(client, total_bytes=total_bytes)
        auditor.watch_endpoint(client)
        auditor.watch_endpoint(server)
    for uplink in testbed.uplinks.values():
        auditor.watch_uplink(uplink)
    testbed.start()
    auditor.start()
    testbed.sim.run(until=weeks * rdcn.week_ns)
    auditor.audit()
    return receivers, auditor, injector


class TestFaultPlanChaos:
    """FaultPlan-driven chaos: under injected faults the auditor must
    stay clean and every finite flow must still complete."""

    @given(
        at_day=st.integers(0, 20),
        down_us=st.integers(20, 200),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=8, deadline=None)
    def test_link_flap_mid_day(self, at_day, down_us, seed):
        rdcn = small_rdcn()
        at_ns = at_day * (rdcn.day_ns + rdcn.night_ns) + rdcn.day_ns // 2
        plan = FaultPlan(specs=[FaultSpec(
            kind="link_flap", target="r0h0-up", at_ns=at_ns,
            params={"down_ns": usec(down_us)},
        )])
        receivers, auditor, _injector = faulted_testbed_run(plan, seed)
        assert auditor.clean, auditor.violations
        for receiver in receivers:
            assert receiver.delivered_bytes >= 100_000

    @given(
        rate=st.floats(0.5, 0.9),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=8, deadline=None)
    def test_heavy_notifier_loss(self, rate, seed):
        plan = FaultPlan(specs=[FaultSpec(
            kind="notifier_drop", params={"rate": rate},
        )])
        receivers, auditor, injector = faulted_testbed_run(plan, seed)
        assert auditor.clean, auditor.violations
        for receiver in receivers:
            assert receiver.delivered_bytes >= 100_000

    @given(
        max_skew_us=st.integers(1, 10),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=8, deadline=None)
    def test_schedule_skew(self, max_skew_us, seed):
        plan = FaultPlan(specs=[FaultSpec(
            kind="schedule_skew", params={"max_skew_ns": usec(max_skew_us)},
        )])
        receivers, auditor, injector = faulted_testbed_run(plan, seed)
        assert injector.effects.get("schedule_skew", 0) > 0
        assert auditor.clean, auditor.violations
        for receiver in receivers:
            assert receiver.delivered_bytes >= 100_000

    def test_same_plan_and_seed_is_byte_identical(self):
        """Determinism contract: identical seed + plan => identical
        telemetry trace, byte for byte."""
        from repro.experiments import ExperimentConfig, run_experiment

        plan = FaultPlan.load("examples/fault_plans/day_one_storm.json")
        digests = []
        with tempfile.TemporaryDirectory() as tmp:
            for replica in ("a", "b"):
                obs = ObsConfig(trace_dir=tmp, label=f"det_{replica}",
                                chrome_trace=False, csv=False)
                result = run_experiment(ExperimentConfig(
                    variant="tdtcp", rdcn=small_rdcn(n_hosts=2, seed=5),
                    n_flows=2, weeks=6, warmup_weeks=1, seed=5,
                    obs=obs, fault_plan=plan, audit="fail",
                ))
                assert result.ok, result.failure
                trace = pathlib.Path(tmp) / f"det_{replica}.jsonl"
                body = trace.read_bytes()
                # Labels differ between replicas; strip them before
                # hashing so only event content is compared.
                body = body.replace(b"det_a", b"det_X").replace(b"det_b", b"det_X")
                digests.append(hashlib.sha256(body).hexdigest())
        assert digests[0] == digests[1]
