"""Applications and the experiment harness."""

import pytest

from repro.apps.bulk import BulkReceiver, BulkSender
from repro.apps.workload import build_workload
from repro.experiments import ExperimentConfig, VARIANTS, get_variant, run_experiment
from repro.experiments.variants import VariantSpec
from repro.rdcn.config import RDCNConfig
from repro.rdcn.topology import build_two_rack_testbed
from repro.tcp.sockets import create_connection_pair
from repro.units import gbps, msec, usec

from tests.helpers import small_rdcn, two_hosts


class TestBulkApps:
    def test_sender_starts_on_establishment(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = create_connection_pair(sim, a, b, connect=False)
        sender = BulkSender(client)
        assert not sender.started
        client.connect()
        sim.run(until=msec(1))
        assert sender.started
        assert client.send_buffer.unlimited

    def test_fixed_size_sender(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = create_connection_pair(sim, a, b)
        BulkSender(client, total_bytes=30_000)
        sim.run(until=msec(5))
        assert server.stats.bytes_delivered == 30_000

    def test_receiver_traces(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = create_connection_pair(sim, a, b)
        receiver = BulkReceiver(server, trace=True)
        BulkSender(client, total_bytes=15_000)
        sim.run(until=msec(5))
        assert receiver.delivered_bytes == 15_000
        assert receiver.samples
        assert receiver.samples[-1][1] == 15_000

    def test_receiver_chains_existing_callback(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = create_connection_pair(sim, a, b)
        seen = []
        server.on_delivered = lambda t, n: seen.append(n)
        BulkReceiver(server)
        BulkSender(client, total_bytes=3000)
        sim.run(until=msec(5))
        assert seen[-1] == 3000

    def test_sender_finish_closes(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = create_connection_pair(sim, a, b)
        sender = BulkSender(client)
        sim.run(until=msec(2))
        sender.finish()
        sim.run(until=msec(30))
        assert client.state == "closed"


class TestWorkload:
    def test_flow_count_and_wiring(self):
        testbed = build_two_rack_testbed(small_rdcn(n_hosts=3))

        def factory(tb, src, dst, index):
            return create_connection_pair(tb.sim, src, dst)

        workload = build_workload(testbed, factory, n_flows=3)
        testbed.start()
        testbed.sim.run(until=testbed.config.week_ns)
        assert len(workload.flows) == 3
        assert workload.total_delivered_bytes > 0

    def test_too_many_flows_rejected(self):
        testbed = build_two_rack_testbed(small_rdcn(n_hosts=2))
        with pytest.raises(ValueError):
            build_workload(testbed, lambda *a: None, n_flows=5)


class TestVariantRegistry:
    def test_all_paper_variants_present(self):
        for name in ("cubic", "dctcp", "mptcp", "retcp", "retcpdyn", "tdtcp", "tdtcp-unopt"):
            spec = get_variant(name)
            assert isinstance(spec, VariantSpec)
            assert spec.name == name

    def test_unknown_variant(self):
        with pytest.raises(KeyError):
            get_variant("quic")

    def test_dctcp_needs_ecn(self):
        assert get_variant("dctcp").needs_ecn
        assert not get_variant("cubic").needs_ecn

    def test_unoptimized_flag(self):
        assert get_variant("tdtcp-unopt").unoptimized_notifier
        assert not get_variant("tdtcp").unoptimized_notifier


class TestExperimentConfig:
    def test_defaults_derive_tcp_config(self):
        cfg = ExperimentConfig(variant="cubic")
        assert cfg.tcp.mss == cfg.rdcn.mss

    def test_hosts_grow_with_flows(self):
        cfg = ExperimentConfig(variant="cubic", n_flows=12)
        assert cfg.rdcn.n_hosts_per_rack >= 12

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(variant="cubic", weeks=3, warmup_weeks=5)
        with pytest.raises(ValueError):
            ExperimentConfig(variant="cubic", n_flows=0)

    def test_duration(self):
        cfg = ExperimentConfig(variant="cubic", weeks=10)
        assert cfg.duration_ns == 10 * cfg.rdcn.week_ns


class TestRunner:
    @pytest.mark.parametrize("variant", ["cubic", "dctcp", "tdtcp", "mptcp", "retcp", "retcpdyn"])
    def test_small_run_every_variant(self, variant):
        cfg = ExperimentConfig(variant=variant, n_flows=2, weeks=6, warmup_weeks=2)
        result = run_experiment(cfg)
        assert result.aggregate_delivered > 0
        assert result.throughput_gbps > 0.5
        assert len(result.flow_delivered) == 2
        assert result.seq_samples
        assert result.voq_samples

    def test_reproducible_runs(self):
        cfg1 = ExperimentConfig(variant="tdtcp", n_flows=2, weeks=5, warmup_weeks=1, seed=9)
        cfg2 = ExperimentConfig(variant="tdtcp", n_flows=2, weeks=5, warmup_weeks=1, seed=9)
        r1 = run_experiment(cfg1)
        r2 = run_experiment(cfg2)
        assert r1.aggregate_delivered == r2.aggregate_delivered
        assert r1.seq_samples == r2.seq_samples

    def test_different_seeds_differ(self):
        # TDTCP reacts to notification timing, whose generation jitter
        # is seeded — different seeds must give different traces.
        # (CUBIC ignores notifications entirely, so its traces are
        # legitimately seed-independent.)
        r1 = run_experiment(ExperimentConfig(variant="tdtcp", n_flows=2, weeks=5, warmup_weeks=1, seed=1))
        r2 = run_experiment(ExperimentConfig(variant="tdtcp", n_flows=2, weeks=5, warmup_weeks=1, seed=2))
        assert r1.seq_samples != r2.seq_samples

    def test_per_day_counters_have_expected_length(self):
        cfg = ExperimentConfig(variant="cubic", n_flows=2, weeks=6, warmup_weeks=2)
        result = run_experiment(cfg)
        assert len(result.reordering_per_day) == 4
        assert len(result.retx_marks_per_day) == 4

    def test_notification_latencies_recorded(self):
        cfg = ExperimentConfig(variant="tdtcp", n_flows=2, weeks=5, warmup_weeks=1)
        result = run_experiment(cfg)
        assert result.notification_latencies

    def test_background_load_reduces_throughput(self):
        quiet = run_experiment(
            ExperimentConfig(variant="cubic", n_flows=2, weeks=10, warmup_weeks=2)
        )
        loaded = run_experiment(
            ExperimentConfig(
                variant="cubic", n_flows=2, weeks=10, warmup_weeks=2,
                background_load=0.5,
            )
        )
        assert loaded.aggregate_delivered < quiet.aggregate_delivered

    def test_background_load_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(variant="cubic", background_load=1.5)

    def test_tdtcp_advantage_survives_background_load(self):
        """§2.1's within-TDN oscillation must not break the headline
        ordering."""
        results = {}
        for variant in ("cubic", "tdtcp"):
            cfg = ExperimentConfig(
                variant=variant, n_flows=4, weeks=16, warmup_weeks=4,
                background_load=0.3,
            )
            results[variant] = run_experiment(cfg).steady_state_throughput_gbps()
        assert results["tdtcp"] > results["cubic"]
