"""OCS-only rotor fabric (RotorNet/Opera-style) with two-hop routing."""

import pytest

from repro.core.tdtcp import TDTCPConnection
from repro.net.packet import Packet
from repro.rdcn.opera import OperaConfig, build_opera_testbed
from repro.tcp.config import TCPConfig
from repro.tcp.connection import TCPConnection
from repro.tcp.sockets import create_connection_pair
from repro.units import msec, throughput_gbps, usec


class TestConfig:
    def test_defaults(self):
        cfg = OperaConfig()
        assert cfg.n_slots == 3
        assert cfg.cycle_ns == 3 * (cfg.slot_ns + cfg.night_ns)

    def test_validation(self):
        with pytest.raises(ValueError):
            OperaConfig(n_racks=5)
        with pytest.raises(ValueError):
            OperaConfig(n_hosts_per_rack=0)


class TestFabricMechanics:
    def test_direct_delivery_during_matching_slot(self):
        cfg = OperaConfig(n_racks=4)
        tb = build_opera_testbed(cfg)
        got = []
        original = tb.host(1, 0).deliver
        tb.host(1, 0).deliver = lambda p: (
            got.append(tb.sim.now) if p.size == 1500 else None, original(p))
        tb.start()
        # Find the slot connecting racks 0 and 1 and inject there.
        slot = next(
            i for i, m in enumerate(tb.matchings) if (0, 1) in m
        )
        inject_at = slot * (cfg.slot_ns + cfg.night_ns) + usec(1)
        tb.sim.at(inject_at, lambda: tb.host(0, 0).send(Packet("r0h0", "r1h0", 1500)))
        tb.sim.run(until=inject_at + usec(50))
        assert len(got) == 1
        # Direct: one fabric hop.
        assert got[0] - inject_at < usec(20)

    def test_two_hop_relays_when_not_matched(self):
        cfg = OperaConfig(n_racks=4, two_hop=True)
        tb = build_opera_testbed(cfg)
        got = []
        original = tb.host(1, 0).deliver
        tb.host(1, 0).deliver = lambda p: (
            got.append(tb.sim.now) if p.size == 1500 else None, original(p))
        tb.start()
        # Inject during a slot where 0 and 1 are NOT matched.
        slot = next(
            i for i, m in enumerate(tb.matchings) if (0, 1) not in m
        )
        inject_at = slot * (cfg.slot_ns + cfg.night_ns) + usec(1)
        tb.sim.at(inject_at, lambda: tb.host(0, 0).send(Packet("r0h0", "r1h0", 1500)))
        tb.sim.run(until=inject_at + cfg.cycle_ns * 2)
        assert len(got) == 1
        transit_total = sum(t.transit_tx for t in tb.tors.values())
        assert transit_total >= 1  # it took the indirect path

    def test_without_two_hop_waits_for_direct_slot(self):
        cfg = OperaConfig(n_racks=4, two_hop=False)
        tb = build_opera_testbed(cfg)
        got = []
        original = tb.host(1, 0).deliver
        tb.host(1, 0).deliver = lambda p: (
            got.append(tb.sim.now) if p.size == 1500 else None, original(p))
        tb.start()
        slot = next(i for i, m in enumerate(tb.matchings) if (0, 1) not in m)
        direct_slot = next(i for i, m in enumerate(tb.matchings) if (0, 1) in m)
        inject_at = slot * (cfg.slot_ns + cfg.night_ns) + usec(1)
        tb.sim.at(inject_at, lambda: tb.host(0, 0).send(Packet("r0h0", "r1h0", 1500)))
        tb.sim.run(until=cfg.cycle_ns * 2)
        assert len(got) == 1
        direct_start = direct_slot * (cfg.slot_ns + cfg.night_ns)
        # Delivered only once the direct slot came around.
        assert got[0] >= min(
            t for t in (direct_start, direct_start + cfg.cycle_ns) if t > inject_at
        )

    def test_relay_happens_at_most_once(self):
        cfg = OperaConfig(n_racks=6, two_hop=True)
        tb = build_opera_testbed(cfg)
        tb.start()
        pkt = Packet("r0h0", "r3h0", 1500)
        tb.host(0, 0).send(pkt)
        tb.sim.run(until=cfg.cycle_ns * 3)
        # The packet arrived and was relayed at most one time.
        relays = sum(t.relayed_rx for t in tb.tors.values())
        assert relays <= 1

    def test_matchings_rotate(self):
        cfg = OperaConfig(n_racks=4)
        tb = build_opera_testbed(cfg)
        partners = []
        tb.start()
        for slot in range(cfg.n_slots):
            tb.sim.run(until=slot * (cfg.slot_ns + cfg.night_ns) + usec(1))
            partners.append(tb.tors[0].partner)
        assert sorted(partners) == [1, 2, 3]

    def test_night_gates_everything(self):
        cfg = OperaConfig(n_racks=4)
        tb = build_opera_testbed(cfg)
        tb.start()
        tb.sim.run(until=cfg.slot_ns + usec(1))  # inside the first night
        assert all(t.partner is None for t in tb.tors.values())


class TestTransportOnOpera:
    def _run_transport(self, connection_cls, cycles=30, **kwargs):
        cfg = OperaConfig(n_racks=4)
        tb = build_opera_testbed(cfg)
        tcp = TCPConfig(
            mss=cfg.mss,
            min_rto_ns=usec(5_000),
            rwnd_packets=256,
            send_buffer_packets=256,
        )
        client, server = create_connection_pair(
            tb.sim, tb.host(0, 0), tb.host(1, 0),
            cc_name="cubic", config=tcp,
            connection_cls=connection_cls, **kwargs,
        )
        client.start_bulk()
        tb.start()
        tb.sim.run(until=cfg.cycle_ns * cycles)
        return tb, client, server

    def test_tcp_makes_progress(self):
        tb, client, server = self._run_transport(TCPConnection)
        assert server.stats.bytes_delivered > 500_000

    def test_tdtcp_tracks_one_state_per_matching(self):
        tb, client, server = self._run_transport(
            TDTCPConnection, tdn_count=3
        )
        assert server.stats.bytes_delivered > 500_000
        assert client.negotiated_tdns == 3
        assert client.tdn_state.switches > 10
        # The direct slot's RTT model is the fastest of the sampled ones
        # (other slots pay the store-and-forward penalty).
        sampled = {
            p.tdn_id: p.rtt.srtt_ns for p in client.paths if p.rtt.srtt_ns
        }
        direct_slot = next(
            i for i, m in enumerate(tb.matchings) if (0, 1) in m
        )
        assert direct_slot in sampled
        assert sampled[direct_slot] == min(sampled.values())
