"""Schedule-site parity: every path into the event core shares one body.

PR 2 hand-inlined the schedule body at seven sites (link x3, fabric x2,
simulator x2); the channel/pool tentpole replaced all of them with three
shared primitives — ``EventQueue.push`` (pinned one-shots),
``EventQueue.push_pooled`` (pool-backed one-shots), and ``Channel.push``
(FIFO sources). These tests pin the contract every path must honour —
identical ``_seq`` / ``_live`` / ``_queue`` bookkeeping — and verify the
link and fabric hot paths actually go through the shared primitives, so
the sites can never drift apart again.
"""

import pytest

from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.rdcn.fabric import NetworkPath, RackUplink
from repro.sim import Simulator
from repro.sim.events import Channel, EventQueue
from repro.units import gbps, usec


def _noop():
    pass


def _schedule_paths(sim):
    """Every public way to put an event on the queue, as
    (label, callable(time) -> Event) pairs."""
    queue = sim._queue
    channel = sim.channel("parity")
    return [
        ("queue.push", lambda t: queue.push(t, _noop)),
        ("queue.push_pooled", lambda t: queue.push_pooled(t, _noop)),
        ("channel.push", lambda t: channel.push(t, _noop)),
        ("sim.schedule", lambda t: sim.schedule(t - sim.now, _noop)),
        ("sim.at", lambda t: sim.at(t, _noop)),
    ]


class TestScheduleParity:
    def test_identical_seq_live_queue_bookkeeping(self):
        sim = Simulator()
        queue = sim._queue
        for i, (label, schedule) in enumerate(_schedule_paths(sim)):
            seq_before = queue._seq
            live_before = queue._live
            event = schedule(100 + i)
            assert event.seq == seq_before, label
            assert queue._seq == seq_before + 1, label
            assert queue._live == live_before + 1, label
            assert event._queue is queue, label
            assert event.time == 100 + i, label
            assert not event.cancelled, label

    def test_interleaved_paths_fire_in_schedule_order(self):
        # Five events at the SAME timestamp, one per schedule path:
        # (time, seq) tie-breaking must fire them in schedule order
        # regardless of which primitive created each.
        sim = Simulator()
        fired = []
        queue = sim._queue
        channel = sim.channel("order")
        queue.push(50, fired.append, ("push",))
        queue.push_pooled(50, fired.append, ("pooled",))
        channel.push(50, fired.append, ("channel",))
        sim.schedule(50, fired.append, "schedule")
        sim.at(50, fired.append, "at")
        sim.run()
        assert fired == ["push", "pooled", "channel", "schedule", "at"]

    def test_cancel_bookkeeping_identical_across_paths(self):
        sim = Simulator()
        queue = sim._queue
        for label, schedule in _schedule_paths(sim):
            event = schedule(sim.now + 100)
            live = queue._live
            event.cancel()
            assert queue._live == live - 1, label
            event.cancel()  # idempotent on every path
            assert queue._live == live - 1, label
            assert event.cancelled, label

    def test_pinned_vs_pooled_generation_stamps(self):
        # push / schedule / at hand events to arbitrary callers: pinned
        # (gen == -1, never recycled). push_pooled / channel.push are
        # for gen-guarded holders: pool-eligible (gen >= 0).
        sim = Simulator()
        queue = sim._queue
        channel = sim.channel("gen")
        assert queue.push(10, _noop).gen == -1
        assert sim.schedule(10, _noop).gen == -1
        assert sim.at(10, _noop).gen == -1
        assert queue.push_pooled(10, _noop).gen >= 0
        assert channel.push(10, _noop).gen >= 0

    def test_drain_leaves_zero_live_on_all_paths(self):
        sim = Simulator()
        queue = sim._queue
        for _label, schedule in _schedule_paths(sim):
            schedule(sim.now + 100)
        processed = sim.run()
        assert processed == 5
        assert queue._live == 0
        assert len(queue._heap) == 0


class TestHotSitesUseSharedBodies:
    """The former inline sites (link x3, fabric x2) must flow through
    the shared primitives — counted via class-level wrappers."""

    @pytest.fixture
    def counters(self, monkeypatch):
        counts = {"push": 0, "push_pooled": 0, "channel_push": 0}
        orig_push = EventQueue.push
        orig_pooled = EventQueue.push_pooled
        orig_channel = Channel.push

        def push(self, time, fn, args=()):
            counts["push"] += 1
            return orig_push(self, time, fn, args)

        def push_pooled(self, time, fn, args=()):
            counts["push_pooled"] += 1
            return orig_pooled(self, time, fn, args)

        def channel_push(self, time, fn, args=()):
            counts["channel_push"] += 1
            return orig_channel(self, time, fn, args)

        monkeypatch.setattr(EventQueue, "push", push)
        monkeypatch.setattr(EventQueue, "push_pooled", push_pooled)
        monkeypatch.setattr(Channel, "push", channel_push)
        return counts

    def test_link_serialization_and_delivery(self, counters):
        # Two packets: the first takes the idle-link send() fast path,
        # the second goes FIFO -> _start_next — both former inline
        # sites must register as push_pooled; both arrivals must ride
        # the propagation channel.
        sim = Simulator()
        got = []
        link = Link(sim, gbps(10), usec(5), lambda p: got.append(sim.now))
        link.send(Packet("a", "b", 1500))
        link.send(Packet("a", "b", 1500))
        sim.run()
        assert len(got) == 2
        assert counters["push_pooled"] == 2  # one per serialization
        assert counters["channel_push"] == 2  # one per delivery
        assert counters["push"] == 0  # nothing bypasses to the slow path

    def test_fabric_serve_and_delivery(self, counters):
        sim = Simulator()
        got = []
        paths = {
            0: NetworkPath(0, gbps(10), usec(40), name="packet"),
            1: NetworkPath(1, gbps(100), usec(10), name="optical"),
        }
        uplink = RackUplink(sim, paths, DropTailQueue(16), lambda p: got.append(sim.now))
        uplink.set_active(0)
        uplink.enqueue(Packet("a", "b", 1500))
        uplink.enqueue(Packet("a", "b", 1500))
        sim.run()
        assert len(got) == 2
        assert counters["push_pooled"] == 2  # one per _serve
        assert counters["channel_push"] == 2  # one per _tx_done delivery
        assert counters["push"] == 0


class TestChannelSemantics:
    def test_only_head_in_heap(self):
        queue = EventQueue()
        channel = queue.channel("c")
        for t in (10, 20, 30, 40):
            channel.push(t, _noop)
        assert len(queue._heap) == 1
        assert len(channel._deque) == 3
        assert len(channel) == 4
        assert len(queue) == 4

    def test_promotion_preserves_global_order(self):
        queue = EventQueue()
        fired = []
        a = queue.channel("a")
        b = queue.channel("b")
        a.push(10, fired.append, ("a10",))
        b.push(5, fired.append, ("b5",))
        a.push(20, fired.append, ("a20",))
        b.push(15, fired.append, ("b15",))
        queue.push(12, fired.append, ("q12",))
        while True:
            event = queue.pop()
            if event is None:
                break
            event.fn(*event.args)
        assert fired == ["b5", "a10", "q12", "b15", "a20"]

    def test_non_monotonic_push_rejected(self):
        queue = EventQueue()
        channel = queue.channel("c")
        channel.push(100, _noop)
        with pytest.raises(ValueError):
            channel.push(99, _noop)
        channel.push(100, _noop)  # equal times are fine (FIFO by seq)

    def test_cancelled_head_still_promotes_successor(self):
        queue = EventQueue()
        fired = []
        channel = queue.channel("c")
        head = channel.push(10, fired.append, ("head",))
        channel.push(20, fired.append, ("next",))
        head.cancel()
        sim_popped = queue.pop()
        assert sim_popped is not None
        assert sim_popped.args == ("next",)
        assert len(queue._heap) == 0

    def test_cancelled_deque_entry_skipped(self):
        queue = EventQueue()
        channel = queue.channel("c")
        channel.push(10, _noop)
        middle = channel.push(20, _noop)
        channel.push(30, _noop)
        middle.cancel()
        times = []
        while True:
            event = queue.pop()
            if event is None:
                break
            times.append(event.time)
        assert times == [10, 30]

    def test_clear_resets_channels(self):
        queue = EventQueue()
        channel = queue.channel("c")
        channel.push(10, _noop)
        stale = channel.push(20, _noop)
        queue.clear()
        assert len(queue) == 0
        assert len(channel) == 0
        stale.cancel()  # must be a no-op against the cleared generation
        assert len(queue) == 0
        channel.push(5, _noop)  # tail time was reset: earlier is fine now
        assert queue.pop().time == 5


class TestEventPool:
    def test_fired_pooled_events_recycle_through_run_loop(self):
        # Chain one pooled event into the next: every re-schedule after
        # the first should reuse the just-fired event from the pool.
        sim = Simulator()
        queue = sim._queue
        remaining = [5]

        def tick():
            remaining[0] -= 1
            if remaining[0]:
                queue.push_pooled(sim.now + 1, tick)

        queue.push_pooled(1, tick)
        sim.run()
        stats = queue.stats()
        # Two misses: the chain's first event, plus the re-schedule
        # made *inside* the first callback (the fired event returns to
        # the pool only after its callback completes). Every later
        # re-schedule is a hit.
        assert stats["pool_misses"] == 2
        assert stats["pool_hits"] == 3
        assert stats["pool_size"] == 2

    def test_recycle_bumps_generation(self):
        queue = EventQueue()
        event = queue.push_pooled(10, _noop)
        gen = event.gen
        popped = queue.pop()
        assert popped is event
        queue.recycle(event)
        assert event.gen == gen + 1
        assert event.fn is None and event.args is None
        reused = queue.push_pooled(20, _noop)
        assert reused is event  # same object, new generation

    def test_cancelled_pooled_events_never_recycled(self):
        sim = Simulator()
        queue = sim._queue
        event = queue.push_pooled(10, _noop)
        event.cancel()
        sim.run()
        assert queue.stats()["pool_size"] == 0

    def test_pinned_events_never_pooled(self):
        sim = Simulator()
        queue = sim._queue
        sim.schedule(10, _noop)
        sim.run()
        assert queue.stats()["pool_size"] == 0


class TestLegacyEscapeHatch:
    def test_legacy_env_disables_channels_and_pool(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_LEGACY_HEAP", "1")
        queue = EventQueue()
        assert queue.stats()["legacy_heap"] is True
        channel = queue.channel("c")
        for t in (10, 20, 30):
            channel.push(t, _noop)
        queue.push_pooled(40, _noop)
        # Everything goes straight to the heap as pinned events.
        assert len(queue._heap) == 4
        assert len(channel._deque) == 0
        assert all(entry[2].gen == -1 for entry in queue._heap)
        times = []
        while True:
            event = queue.pop()
            if event is None:
                break
            times.append(event.time)
        assert times == [10, 20, 30, 40]
        assert queue.stats()["pool_hits"] == 0
        assert queue.stats()["pool_misses"] == 0
