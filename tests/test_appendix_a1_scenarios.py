"""Appendix A.1: the full cross-TDN reordering taxonomy (Figure 12).

Scenarios (a)-(c) are data-crossing-only, (d)-(f) ACK-crossing-only,
(g)-(h) double-crossing. The appendix's observations, tested here:

* data reordering triggers TCP's fast-retransmit heuristics; TDTCP's
  relaxed detection suppresses the spurious retransmissions;
* "ACK reordering is largely harmless" — cumulative ACK semantics
  nullify the stragglers for plain TCP too;
* "double crossing either cancels each other out or does not manifest
  as an issue from the sender's perspective."

Each scenario runs a live connection through a link that delays a
window of packets (data, ACKs, or both) around a TDN switch.
"""

import pytest

from repro.core.tdtcp import TDTCPConnection
from repro.net.packet import TDNNotification
from repro.tcp.connection import TCPConnection
from repro.tcp.sockets import create_connection_pair
from repro.units import msec, usec

from tests.helpers import two_hosts

SWITCH_AT = msec(1)
DELAY = usec(45)
HELD = 8


def run_scenario(connection_cls, delay_data: bool, delay_acks: bool, **kwargs):
    """Bulk transfer; at the switch, the tail of old-TDN data and/or
    ACKs is delayed by the slow path while new-TDN traffic runs fast."""
    sim, a, b, ab, ba = two_hosts(one_way_ns=usec(20))
    held = {"data": 0, "acks": 0}

    fwd = ab.deliver

    def data_path(pkt):
        if (
            delay_data
            and pkt.payload_len
            and getattr(pkt, "data_tdn", None) in (0, None)
            and sim.now > SWITCH_AT - usec(10)
            and sim.now <= SWITCH_AT + usec(2)
            and held["data"] < HELD
        ):
            held["data"] += 1
            sim.schedule(DELAY, fwd, pkt)
            return
        fwd(pkt)

    rev = ba.deliver

    def ack_path(pkt):
        if (
            delay_acks
            and pkt.is_ack
            and not pkt.payload_len
            and sim.now > SWITCH_AT - usec(10)
            and sim.now <= SWITCH_AT + usec(2)
            and held["acks"] < HELD
        ):
            held["acks"] += 1
            sim.schedule(DELAY, rev, pkt)
            return
        rev(pkt)

    ab.deliver = data_path
    ba.deliver = ack_path
    client, server = create_connection_pair(
        sim, a, b, connection_cls=connection_cls, **kwargs
    )
    client.start_bulk()
    sim.run(until=SWITCH_AT)
    a.deliver(TDNNotification("tor0", a.address, tdn_id=1))
    b.deliver(TDNNotification("tor1", b.address, tdn_id=1))
    sim.run(until=SWITCH_AT + msec(2))
    return sim, client, server, held


SCENARIOS = {
    # Figure 12 groups: (delay_data, delay_acks)
    "data-crossing (a-c)": (True, False),
    "ack-crossing (d-f)": (False, True),
    "double-crossing (g-h)": (True, True),
}


class TestTDTCPAcrossAllScenarios:
    @pytest.mark.parametrize("label", list(SCENARIOS))
    def test_no_spurious_retransmissions(self, label):
        delay_data, delay_acks = SCENARIOS[label]
        sim, client, server, held = run_scenario(
            TDTCPConnection, delay_data, delay_acks, tdn_count=2
        )
        assert held["data" if delay_data else "acks"] > 0
        assert client.stats.spurious_retransmissions == 0, label

    @pytest.mark.parametrize("label", list(SCENARIOS))
    def test_stream_completes(self, label):
        delay_data, delay_acks = SCENARIOS[label]
        sim, client, server, held = run_scenario(
            TDTCPConnection, delay_data, delay_acks, tdn_count=2
        )
        assert server.recv_buffer.ooo_bytes == 0
        assert server.stats.bytes_delivered > 1_000_000


class TestPlainTCPContrast:
    def test_data_crossing_hurts_plain_tcp(self):
        """Scenarios (a)-(c): plain TCP spuriously retransmits."""
        sim, client, server, held = run_scenario(TCPConnection, True, False)
        assert held["data"] > 0
        assert client.stats.spurious_retransmissions >= 1

    def test_ack_crossing_largely_harmless(self):
        """Scenarios (d)-(f): 'ACK reordering is largely harmless' —
        later cumulative ACKs nullify the stragglers."""
        sim, client, server, held = run_scenario(TCPConnection, False, True)
        assert held["acks"] > 0
        assert client.stats.spurious_retransmissions == 0

    def test_transitions_to_slower_tdn_do_not_reorder(self):
        """A.1: 'There is no cross-TDN reordering in transitions from
        low latency to high latency' — delaying the *new* TDN's traffic
        (slower path after the switch) produces no reordering at all."""
        sim, a, b, ab, _ba = two_hosts(one_way_ns=usec(20))
        fwd = ab.deliver

        def slow_new_tdn(pkt):
            if pkt.payload_len and getattr(pkt, "data_tdn", None) == 1:
                sim.schedule(DELAY, fwd, pkt)
                return
            fwd(pkt)

        ab.deliver = slow_new_tdn
        client, server = create_connection_pair(
            sim, a, b, connection_cls=TDTCPConnection, tdn_count=2
        )
        client.start_bulk()
        sim.run(until=SWITCH_AT)
        a.deliver(TDNNotification("tor0", a.address, tdn_id=1))
        b.deliver(TDNNotification("tor1", b.address, tdn_id=1))
        sim.run(until=SWITCH_AT + msec(2))
        assert client.stats.spurious_retransmissions == 0
        assert client.stats.retransmissions == 0
