"""TDTCPConnection behaviour: negotiation, switching, tagging,
relaxed loss detection, RTT filtering, pacing, downgrade."""

import pytest

from repro.core.tdtcp import TDTCPConnection
from repro.net.packet import TDNNotification
from repro.sim import Simulator
from repro.tcp.config import TCPConfig
from repro.tcp.connection import ESTABLISHED, TCPConnection
from repro.tcp.sockets import create_connection_pair
from repro.units import msec, usec

from tests.helpers import two_hosts


def tdtcp_pair(sim, a, b, tdn_count=2, **kwargs):
    return create_connection_pair(
        sim, a, b, connection_cls=TDTCPConnection, tdn_count=tdn_count, **kwargs
    )


class TestNegotiation:
    def test_td_capable_handshake(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = tdtcp_pair(sim, a, b)
        sim.run(until=usec(200))
        assert client.state == ESTABLISHED
        assert client.negotiated_tdns == 2
        assert server.negotiated_tdns == 2
        assert client.is_tdtcp and server.is_tdtcp

    def test_mismatched_tdn_count_downgrades(self):
        sim, a, b, _ab, _ba = two_hosts()
        client_port = a.allocate_port()
        client = TDTCPConnection(sim, a, b.address, 5001, local_port=client_port, tdn_count=2)
        server = TDTCPConnection(sim, b, a.address, client_port, local_port=5001, tdn_count=3)
        server.listen()
        client.connect()
        sim.run(until=usec(300))
        assert client.state == ESTABLISHED
        assert server.downgraded
        assert client.downgraded

    def test_plain_tcp_peer_downgrades(self):
        sim, a, b, _ab, _ba = two_hosts()
        client_port = a.allocate_port()
        client = TDTCPConnection(sim, a, b.address, 5001, local_port=client_port, tdn_count=2)
        server = TCPConnection(sim, b, a.address, client_port, local_port=5001)
        server.listen()
        client.connect()
        sim.run(until=usec(300))
        assert client.state == ESTABLISHED
        assert client.downgraded
        assert server.negotiated_tdns is None

    def test_syn_tracked_under_tdn0(self):
        """A.2: the SYN is always accounted to TDN 0."""
        sim, a, b, _ab, _ba = two_hosts()
        client_port = a.allocate_port()
        client = TDTCPConnection(sim, a, b.address, 5001, local_port=client_port, tdn_count=2)
        # Force the current TDN away from 0 before connecting.
        client.set_current_tdn(1)
        server = TDTCPConnection(sim, b, a.address, client_port, local_port=5001, tdn_count=2)
        server.listen()
        client.connect()
        assert client.segments[0].tdn_id == 0
        sim.run(until=usec(300))
        assert client.state == ESTABLISHED


class TestSwitching:
    def test_notification_switches_state(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, _server = tdtcp_pair(sim, a, b)
        sim.run(until=usec(200))
        a.deliver(TDNNotification("tor", a.address, tdn_id=1))
        sim.run(until=usec(201))
        assert client.current_tdn == 1
        assert client.tdn_state.switches == 1

    def test_change_pointer_set_on_switch(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, _server = tdtcp_pair(sim, a, b)
        client.start_bulk()
        sim.run(until=msec(1))
        snd_nxt = client.snd_nxt
        a.deliver(TDNNotification("tor", a.address, tdn_id=1))
        sim.run(until=msec(1) + usec(1))
        assert client.tdn_change_seq >= snd_nxt

    def test_new_tdn_initializes_state(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, _server = tdtcp_pair(sim, a, b)
        sim.run(until=usec(200))
        a.deliver(TDNNotification("tor", a.address, tdn_id=5))
        sim.run(until=usec(210))
        assert len(client.paths) == 6
        assert client.current_tdn == 5

    def test_data_tagged_with_current_tdn(self):
        sim, a, b, ab, _ba = two_hosts()
        tags = []
        original = ab.deliver
        ab.deliver = lambda p: (tags.append(p.data_tdn) if p.payload_len else None, original(p))
        client, _server = tdtcp_pair(sim, a, b)
        client.start_bulk()
        sim.run(until=usec(500))
        assert set(tags) == {0}
        a.deliver(TDNNotification("tor", a.address, tdn_id=1))
        tags.clear()
        sim.run(until=msec(2))
        assert 1 in set(tags)

    def test_acks_tagged_by_receiver_view(self):
        sim, a, b, _ab, ba = two_hosts()
        tags = []
        original = ba.deliver
        ba.deliver = lambda p: (tags.append(p.ack_tdn) if p.is_ack else None, original(p))
        client, server = tdtcp_pair(sim, a, b)
        client.start_bulk()
        sim.run(until=usec(500))
        b.deliver(TDNNotification("tor", b.address, tdn_id=1))
        # Let ACKs generated before the switch drain out of the pipe.
        sim.run(until=usec(800))
        tags.clear()
        sim.run(until=msec(2))
        assert set(tags) == {1}

    def test_per_tdn_cwnd_checkpointing_end_to_end(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, _server = tdtcp_pair(sim, a, b)
        client.start_bulk()
        sim.run(until=msec(3))
        # Both ends learn about the switch (as both racks' ToRs notify).
        a.deliver(TDNNotification("tor", a.address, tdn_id=1))
        b.deliver(TDNNotification("tor", b.address, tdn_id=1))
        sim.run(until=msec(4))  # pre-switch ACKs drain
        cwnd0 = client.paths[0].cc.cwnd
        sim.run(until=msec(8))
        assert client.paths[0].cc.cwnd == cwnd0  # untouched while inactive


class TestDowngradeAPI:
    def test_manual_downgrade(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = tdtcp_pair(sim, a, b)
        client.start_bulk()
        sim.run(until=msec(1))
        client.downgrade()
        assert client.current_tdn == 0
        a.deliver(TDNNotification("tor", a.address, tdn_id=1))
        sim.run(until=msec(2))
        assert client.current_tdn == 0  # notifications ignored
        assert client.wire_tdn is None  # no more tagging
        # The peer keeps talking TDTCP; transfer continues.
        assert server.stats.bytes_delivered > 0

    def test_snapshot_fields(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, _server = tdtcp_pair(sim, a, b)
        sim.run(until=usec(200))
        snap = client.snapshot()
        assert snap["tdtcp"] is True
        assert snap["current_tdn"] == 0
        assert len(snap["paths"]) == 2


class TestRelaxedLossDetection:
    def test_cross_tdn_hole_not_marked_lost(self):
        """Data sent on TDN 0, then a switch to TDN 1; TDN-1 ACKs SACKing
        above the un-ACKed TDN-0 data must not trigger retransmission."""
        sim, a, b, ab, _ba = two_hosts()
        held = []
        original = ab.deliver

        def slow_path(pkt):
            # Delay the last TDN-0 data sent just before the switch:
            # they arrive 40 us late while TDN-1 data goes straight
            # through (the low-latency path of Figure 3a).
            if (
                pkt.payload_len
                and pkt.data_tdn == 0
                and len(held) < 8
                and sim.now > usec(990)
            ):
                held.append(pkt)
                sim.schedule(usec(40), original, pkt)
                return
            original(pkt)

        ab.deliver = slow_path
        client, server = tdtcp_pair(sim, a, b)
        client.start_bulk()
        sim.run(until=msec(1))
        a.deliver(TDNNotification("tor", a.address, tdn_id=1))
        b.deliver(TDNNotification("tor", b.address, tdn_id=1))
        sim.run(until=msec(3))
        assert held  # reordering actually happened
        # Relaxed detection: the delayed TDN-0 segments were not
        # spuriously retransmitted via the dup/SACK heuristic.
        assert client.stats.spurious_retransmissions <= 1

    def test_plain_tcp_retransmits_same_scenario(self):
        """Control experiment: plain TCP in the same reordering scenario
        does retransmit spuriously (what Figure 10 shows for CUBIC)."""
        sim, a, b, ab, _ba = two_hosts()
        held = []
        original = ab.deliver

        def slow_path(pkt):
            if pkt.payload_len and len(held) < 8 and 80_000 < pkt.seq <= 92_000:
                held.append(pkt)
                sim.schedule(usec(400), original, pkt)
                return
            original(pkt)

        ab.deliver = slow_path
        client, server = create_connection_pair(sim, a, b)
        client.start_bulk()
        sim.run(until=msec(3))
        assert held
        assert client.stats.spurious_retransmissions >= 1


class TestRTTFiltering:
    def test_type3_samples_discarded(self):
        """Crossed samples must not pollute either TDN's estimator."""
        sim, a, b, _ab, _ba = two_hosts(one_way_ns=usec(20))
        client, server = tdtcp_pair(sim, a, b)
        client.start_bulk()
        sim.run(until=msec(2))
        # Receiver switches its view to TDN 1: its ACKs are now tagged 1
        # while the sender's data stays tagged 0 -> type-3, discarded.
        b.deliver(TDNNotification("tor", b.address, tdn_id=1))
        sim.run(until=msec(2) + usec(200))  # pre-switch ACKs drain
        srtt_before = client.paths[0].rtt.srtt_ns
        samples_before = client.paths[0].rtt.samples + client.paths[1].rtt.samples
        sim.run(until=msec(4))
        samples_after = client.paths[0].rtt.samples + client.paths[1].rtt.samples
        assert samples_after == samples_before
        assert client.paths[0].rtt.srtt_ns == srtt_before

    def test_pessimistic_rto_used(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = tdtcp_pair(sim, a, b)
        client.start_bulk()
        sim.run(until=msec(2))
        # Give TDN 1 a large RTT history by hand.
        client.paths[1].rtt.update(usec(500))
        rto = client._rto_ns()
        # synth >= srtt0/2 + 500/2.
        assert rto >= usec(250)


class TestSwitchPacing:
    def _switch_burst_sends(self, switch_pacing: bool) -> list:
        """Times at which TDN-1 data leaves the host NIC after a switch."""
        sim, a, b, _ab, _ba = two_hosts(forward_queue=32)
        times = []
        original_send = a.send

        def counting_send(pkt):
            if getattr(pkt, "payload_len", 0) and pkt.data_tdn == 1:
                times.append(sim.now)
            original_send(pkt)

        a.send = counting_send
        client, _server = tdtcp_pair(sim, a, b, switch_pacing=switch_pacing)
        client.start_bulk()
        sim.run(until=msec(2))
        client.paths[1].cc.cwnd = 40
        times.clear()
        a.deliver(TDNNotification("tor", a.address, tdn_id=1))
        sim.run(until=msec(2) + usec(30))
        return times

    def test_pacing_spreads_burst(self):
        times = self._switch_burst_sends(switch_pacing=True)
        # Paced: far fewer than the full window in the first 30 us.
        assert 0 < len(times) < 20

    def test_unpaced_bursts(self):
        times = self._switch_burst_sends(switch_pacing=False)
        assert len(times) >= 20  # the whole window goes out immediately
