"""Campaign observability: the JSONL event bus, schema validation,
executor lifecycle events, worker heartbeats (inline and pooled),
deterministic summaries, the live TTY view, and the dashboard
renderers."""

import importlib.util
import io
import json
import pathlib

import pytest

from repro.experiments import executor as executor_mod
from repro.experiments.config import ExperimentConfig
from repro.experiments.executor import ExperimentExecutor
from repro.experiments.report import (
    merge_campaign_sketches,
    render_campaign,
    render_campaign_html,
)
from repro.experiments.runner import ExperimentResult, RunFailure
from repro.obs.campaign import (
    CAMPAIGN_SCHEMA_VERSION,
    CampaignLog,
    LiveCampaignView,
    campaign_summary,
    read_campaign,
    validate_record,
    validate_records,
)
from repro.obs.sketch import QuantileSketch

ROOT = pathlib.Path(__file__).resolve().parent.parent


def small_config(**overrides):
    kwargs = dict(variant="cubic", weeks=4, warmup_weeks=1, n_flows=2, seed=1)
    kwargs.update(overrides)
    return ExperimentConfig(**kwargs)


def failing_payload(payload: dict) -> dict:
    config = ExperimentConfig.from_dict(payload)
    result = ExperimentResult(config=config, duration_ns=config.duration_ns)
    result.failure = RunFailure("Boom", "synthetic crash", config.seed, None, None)
    return result.to_dict()


def run_campaign(configs, path=None, jobs=1, heartbeat_events=5_000, **executor_kwargs):
    campaign = CampaignLog(path)
    executor = ExperimentExecutor(
        jobs=jobs,
        campaign=campaign,
        heartbeat_events=heartbeat_events,
        **executor_kwargs,
    )
    results = executor.run_batch(configs)
    campaign.close()
    return campaign, results


def events_of(records, kind):
    return [r for r in records if r["event"] == kind]


class TestCampaignLog:
    def test_jsonl_lines_are_key_sorted_with_monotonic_seq(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with CampaignLog(path) as log:
            log.emit("campaign_start", schema=CAMPAIGN_SCHEMA_VERSION, total=1, jobs=1)
            log.emit("queued", run="a", index=0, total=1, variant="cubic", seed=1)
            log.emit("started", run="a", attempt=1)
            log.emit("finished", run="a", outcome="ok")
        lines = path.read_text().splitlines()
        assert len(lines) == 4
        for line in lines:
            assert line == json.dumps(json.loads(line), sort_keys=True)
        records = read_campaign(path)
        assert [r["seq"] for r in records] == [0, 1, 2, 3]
        assert validate_records(records) == []

    def test_unknown_event_raises(self):
        with pytest.raises(ValueError):
            CampaignLog().emit("exploded")

    def test_in_memory_bus_drives_subscribers(self):
        log = CampaignLog()  # path=None: no file, subscribers still fire
        seen = []
        log.subscribe(seen.append)
        record = log.emit("campaign_start", schema=1, total=0, jobs=1)
        assert log.path is None
        assert seen == [record] == log.records
        assert record["wall_ms"] >= 0.0


class TestValidation:
    def test_unknown_event_type(self):
        assert validate_record({"event": "nope", "seq": 0, "wall_ms": 0.0})

    def test_missing_and_mistyped_fields(self):
        errors = validate_record({"event": "heartbeat", "seq": 0, "wall_ms": 0.0,
                                  "run": "a", "sim_now": "soon", "events": 1,
                                  "events_per_s": 1.0})
        assert any("pending_events" in e and "missing" in e for e in errors)
        assert any("sim_now" in e and "type" in e for e in errors)

    def test_cross_record_invariants(self):
        good = {"event": "started", "seq": 5, "wall_ms": 1.0, "run": "a", "attempt": 1}
        errors = validate_records([good, dict(good, seq=5)])
        assert any("strictly greater" in e for e in errors)
        assert any("campaign_start" in e for e in errors)


class TestExecutorCampaign:
    @pytest.fixture(scope="class")
    def campaign_records(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("campaign") / "log.jsonl"
        configs = [
            small_config(variant="cubic", seed=1),
            small_config(variant="mptcp", seed=1),
            small_config(variant="cubic", seed=2),
        ]
        campaign, results = run_campaign(configs, path=path)
        assert all(r.ok for r in results)
        return read_campaign(path)

    def test_stream_is_schema_valid(self, campaign_records):
        assert validate_records(campaign_records) == []
        assert campaign_records[0]["event"] == "campaign_start"
        assert campaign_records[-1]["event"] == "campaign_end"

    def test_full_lifecycle_per_run(self, campaign_records):
        for label in ("cubic/seed1", "mptcp/seed1", "cubic/seed2"):
            per_run = [r for r in campaign_records if r.get("run") == label]
            kinds = [r["event"] for r in per_run]
            assert kinds[0] == "queued"
            assert "started" in kinds
            assert kinds[-1] == "finished"

    def test_every_executed_run_heartbeats(self, campaign_records):
        executed = {r["run"] for r in campaign_records if r["event"] == "started"}
        assert executed  # sanity
        for label in executed:
            beats = [r for r in campaign_records
                     if r["event"] == "heartbeat" and r["run"] == label]
            assert len(beats) >= 1
            # Lifetime counters only ever grow.
            events = [b["events"] for b in beats]
            assert events == sorted(events)
            assert all(isinstance(b["pending_events"], int) for b in beats)

    def test_finished_events_carry_sketches(self, campaign_records):
        finished = events_of(campaign_records, "finished")
        assert finished
        for record in finished:
            sketch = QuantileSketch.from_dict(record["sketches"]["notify_latency_ns"])
            assert sketch.count > 0

    def test_campaign_end_stats(self, campaign_records):
        stats = events_of(campaign_records, "campaign_end")[-1]["stats"]
        assert stats["total"] == 3
        assert stats["executed"] == 3
        assert stats["failures"] == 0
        assert stats["wall_s"] > 0.0

    def test_cache_hits_emit_cache_hit_events(self, tmp_path):
        configs = [small_config(seed=11), small_config(seed=12)]
        run_campaign(configs, cache_dir=str(tmp_path / "cache"))
        warm, results = run_campaign(configs, cache_dir=str(tmp_path / "cache"))
        assert all(r.ok for r in results)
        assert len(events_of(warm.records, "cache_hit")) == 2
        assert events_of(warm.records, "started") == []
        assert events_of(warm.records, "heartbeat") == []

    def test_retry_and_failed_events(self, monkeypatch):
        monkeypatch.setattr(executor_mod, "execute_config_dict", failing_payload)
        campaign, results = run_campaign([small_config()], retries=2)
        assert not results[0].ok
        retries = events_of(campaign.records, "retry")
        assert [r["attempt"] for r in retries] == [2, 3]
        starts = events_of(campaign.records, "started")
        assert [r["attempt"] for r in starts] == [1, 2, 3]
        failed = events_of(campaign.records, "failed")[0]
        assert failed["error_type"] == "Boom"
        # A run whose *simulation* failed every attempt is poison: it is
        # quarantined so a resumed campaign never resubmits it.
        quarantined = events_of(campaign.records, "quarantined")[0]
        assert quarantined["attempts"] == 3
        summary = campaign_summary(campaign.records)
        run = summary["runs"]["cubic/seed1"]
        assert run["state"] == "quarantined"
        assert run["retries"] == 2
        assert run["attempts"] == 3

    def test_progress_counts_monotonic_through_retries(self, tmp_path, monkeypatch):
        # Regression: the inline retry report used to hand progress
        # done=0 after cache hits had already advanced the count.
        cached = small_config(seed=21)
        ExperimentExecutor(cache_dir=str(tmp_path / "c")).run_batch([cached])
        monkeypatch.setattr(executor_mod, "execute_config_dict", failing_payload)
        seen = []
        executor = ExperimentExecutor(
            cache_dir=str(tmp_path / "c"),
            retries=1,
            progress=lambda done, total, label, outcome: seen.append((done, outcome)),
        )
        executor.run_batch([cached, small_config(seed=22)])
        dones = [done for done, _outcome in seen]
        assert dones == sorted(dones)
        assert ("retry" in {o for _d, o in seen})
        retry_done = [d for d, o in seen if o == "retry"][0]
        assert retry_done == 1  # the cached item already counted

    def test_summaries_byte_identical_across_identical_campaigns(self):
        configs = [small_config(seed=31), small_config(variant="mptcp", seed=31)]
        first, _ = run_campaign(configs)
        second, _ = run_campaign(configs)
        encode = lambda c: json.dumps(campaign_summary(c.records), sort_keys=True)
        assert encode(first) == encode(second)
        # ...and heartbeats genuinely happened on both sides.
        assert events_of(first.records, "heartbeat")

    def test_pool_path_relays_heartbeats(self, tmp_path):
        path = tmp_path / "pool.jsonl"
        configs = [small_config(seed=41), small_config(seed=42)]
        campaign, results = run_campaign(configs, path=path, jobs=2)
        assert all(r.ok for r in results)
        records = read_campaign(path)
        assert validate_records(records) == []
        for label in ("cubic/seed41", "cubic/seed42"):
            beats = [r for r in records
                     if r["event"] == "heartbeat" and r["run"] == label]
            assert len(beats) >= 1
            # All of a run's heartbeats land before its finished event.
            finish_seq = [r["seq"] for r in records
                          if r["event"] == "finished" and r["run"] == label][0]
            assert all(b["seq"] < finish_seq for b in beats)


class TestLiveView:
    def make_view(self):
        clock = iter(x * 0.5 for x in range(1000))
        ticks = {"now": 0.0}

        def fake_clock():
            ticks["now"] = next(clock)
            return ticks["now"]

        stream = io.StringIO()
        return LiveCampaignView(stream, jobs=2, clock=fake_clock), stream

    def test_renders_state_eta_and_utilization(self):
        view, stream = self.make_view()
        log = CampaignLog(clock=lambda: 0.0)
        log.subscribe(view.on_record)
        log.emit("campaign_start", schema=1, total=2, jobs=2)
        log.emit("queued", run="a", index=0, total=2)
        log.emit("started", run="a", attempt=1)
        log.emit("heartbeat", run="a", sim_now=10_000, events=5_000,
                 events_per_s=1e6, pending_events=7)
        log.emit("finished", run="a", outcome="ok")
        log.emit("started", run="b", attempt=1)
        log.emit("failed", run="b", error_type="Boom", error_message="x")
        out = stream.getvalue()
        assert "campaign [1/2]" in out
        assert "workers 1/2" in out
        assert "5,000 ev" in out  # the in-flight run's heartbeat line
        assert view.done == 2
        assert view.failures == 1
        assert view.eta_s() is not None
        assert "\x1b[" in out  # in-place repaint

    def test_cache_hit_rate(self):
        view, _stream = self.make_view()
        view.on_record({"event": "campaign_start", "total": 2, "jobs": 1,
                        "seq": 0, "wall_ms": 0.0})
        view.on_record({"event": "cache_hit", "run": "a", "index": 0,
                        "seq": 1, "wall_ms": 0.0})
        assert view.cache_hits == 1
        assert view.done == 1


class TestDashboard:
    @pytest.fixture(scope="class")
    def records(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("dash") / "log.jsonl"
        configs = [
            small_config(variant="cubic", seed=51),
            small_config(variant="mptcp", seed=51),
            small_config(variant="cubic", seed=52),
        ]
        run_campaign(configs, path=path)
        return read_campaign(path)

    def test_merge_campaign_sketches_groups_by_variant(self, records):
        merged = merge_campaign_sketches(records)
        assert set(merged) >= {"notify_latency_ns", "retx_marks_per_day"}
        by_variant = merged["notify_latency_ns"]
        assert set(by_variant) == {"cubic", "mptcp"}
        # cubic merges two seeds; each seed's count is positive.
        assert by_variant["cubic"].count > by_variant["mptcp"].count / 2

    def test_render_campaign_markdown(self, records):
        text = render_campaign(records)
        assert "# Campaign report" in text
        assert "3 finished" in text
        assert "notify_latency_ns" in text
        assert "| cubic/seed51 |" in text
        assert "## Failures & retries" in text
        assert "none — every run completed" in text

    def test_render_campaign_html(self, records):
        html = render_campaign_html(records)
        assert html.startswith("<!doctype html>")
        assert "mptcp" in html
        assert "heartbeats observed" in html
        assert "state-finished" in html

    def test_failed_run_appears_in_tables(self):
        log = CampaignLog()
        log.emit("campaign_start", schema=1, total=1, jobs=1)
        log.emit("queued", run="x", index=0, total=1, variant="tdtcp", seed=1)
        log.emit("started", run="x", attempt=1)
        log.emit("retry", run="x", attempt=2)
        log.emit("started", run="x", attempt=2)
        log.emit("failed", run="x", error_type="Boom", error_message="<bad>")
        text = render_campaign(log.records)
        assert "| x | failed | 1 | Boom: <bad> |" in text
        html = render_campaign_html(log.records)
        assert "state-failed" in html
        assert "&lt;bad&gt;" in html  # escaped


class TestCampaignReportTool:
    def load_tool(self):
        spec = importlib.util.spec_from_file_location(
            "campaign_report", ROOT / "tools" / "campaign_report.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_renders_and_validates(self, tmp_path, capsys):
        log_path = tmp_path / "log.jsonl"
        run_campaign([small_config(seed=61)], path=log_path)
        tool = self.load_tool()
        html = tmp_path / "dash.html"
        md = tmp_path / "dash.md"
        summary = tmp_path / "summary.json"
        code = tool.main([str(log_path), "--html", str(html), "--markdown", str(md),
                          "--summary-json", str(summary), "--validate", "--quiet"])
        assert code == 0
        assert html.read_text().startswith("<!doctype html>")
        assert "# Campaign report" in md.read_text()
        doc = json.loads(summary.read_text())
        assert doc["schema"] == CAMPAIGN_SCHEMA_VERSION
        assert doc["runs"]["cubic/seed61"]["state"] == "finished"
        assert capsys.readouterr().err.strip().endswith("schema-valid")

    def test_validate_rejects_bad_records(self, tmp_path, capsys):
        log_path = tmp_path / "bad.jsonl"
        run_campaign([small_config(seed=62)], path=log_path)
        with open(log_path, "a") as handle:
            handle.write(json.dumps({"event": "heartbeat", "seq": 0}) + "\n")
        tool = self.load_tool()
        assert tool.main([str(log_path), "--validate", "--quiet"]) == 1
        assert "schema" in capsys.readouterr().err
