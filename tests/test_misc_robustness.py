"""Assorted robustness cases discovered during calibration, pinned."""

import pytest

from repro.core.tdtcp import TDTCPConnection
from repro.net.packet import TDNNotification
from repro.tcp.config import TCPConfig
from repro.tcp.sockets import create_connection_pair
from repro.units import msec, usec

from tests.helpers import bulk_pair, two_hosts


class TestAccountingLeakRegressions:
    """DESIGN.md §6b item 5: the two pipe-accounting leaks, pinned."""

    def test_rto_clears_stale_retrans_out(self):
        """An RTO while retransmissions are outstanding must void their
        retrans_out so the collapsed window can still send."""
        sim, a, b, ab, _ba = two_hosts()
        client, server = bulk_pair(sim, a, b)
        sim.run(until=msec(2))
        # Drop everything for a while: losses, retransmissions, RTOs.
        original, ab.deliver = ab.deliver, lambda pkt: None
        sim.run(until=msec(8))
        ab.deliver = original
        sim.run(until=msec(40))
        client.check_invariants()
        # The connection recovered instead of deadlocking at cwnd=1.
        assert server.recv_buffer.ooo_bytes == 0
        assert client.snd_una > 1_000_000

    def test_sack_clears_retrans_out(self):
        """A SACKed segment's outstanding retransmission leaves the
        pipe accounting (the fig-sweep wedge regression)."""
        sim, a, b, ab, _ba = two_hosts(forward_queue=16)
        client, server = bulk_pair(sim, a, b)
        sim.run(until=msec(40))
        client.check_invariants()
        for seg in client.segments.values():
            if seg.sacked:
                assert not seg.retrans_outstanding

    def test_srtt_not_inflated_by_late_cumulative_acks(self):
        """DESIGN.md §6b item 3: recovery spanning many RTTs must not
        drag srtt up to the recovery duration."""
        sim, a, b, ab, _ba = two_hosts(forward_queue=16)
        client, server = bulk_pair(sim, a, b)
        sim.run(until=msec(40))
        # Base RTT ~40 us; with a 16-packet queue, worst honest sample
        # is well under 200 us. Recovery epochs last far longer.
        assert client.paths[0].rtt.srtt_ns < usec(400)


class TestNotificationEdgeCases:
    def test_notification_before_establishment_is_safe(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = create_connection_pair(
            sim, a, b, connection_cls=TDTCPConnection, tdn_count=2, connect=False
        )
        a.deliver(TDNNotification("tor", a.address, tdn_id=1))
        sim.run(until=usec(10))
        assert client.current_tdn == 1
        client.connect()
        client.start_bulk()
        sim.run(until=msec(2))
        assert client.state == "established"
        assert server.stats.bytes_delivered > 0

    def test_duplicate_notifications_are_noops(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, _server = create_connection_pair(
            sim, a, b, connection_cls=TDTCPConnection, tdn_count=2
        )
        sim.run(until=usec(200))
        for _ in range(5):
            a.deliver(TDNNotification("tor", a.address, tdn_id=1))
        sim.run(until=usec(210))
        assert client.tdn_state.switches == 1

    def test_rapid_flapping_notifications(self):
        """Pathological sub-RTT TDN flapping must not corrupt state."""
        sim, a, b, _ab, _ba = two_hosts()
        client, server = create_connection_pair(
            sim, a, b, connection_cls=TDTCPConnection, tdn_count=2
        )
        client.start_bulk()
        for k in range(60):
            sim.at(usec(100 + 7 * k), a.deliver, TDNNotification("tor", a.address, k % 2))
            sim.at(usec(100 + 7 * k), b.deliver, TDNNotification("tor", b.address, k % 2))
        sim.run(until=msec(5))
        client.check_invariants()
        assert server.stats.bytes_delivered > 100_000


class TestConfigSurface:
    def test_tcp_config_validation(self):
        with pytest.raises(ValueError):
            TCPConfig(mss=0)
        with pytest.raises(ValueError):
            TCPConfig(initial_cwnd=0)
        with pytest.raises(ValueError):
            TCPConfig(min_rto_ns=0)
        with pytest.raises(ValueError):
            TCPConfig(min_rto_ns=10, max_rto_ns=5)
        with pytest.raises(ValueError):
            TCPConfig(dupthresh=0)
