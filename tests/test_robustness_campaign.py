"""Crash-safe campaign layer: checkpoint/resume, backoff, chaos.

The contract under test (ISSUE: crash-safe campaigns): a campaign that
dies mid-flight — SIGKILL included — resumes from its journal +
checkpoint sidecar with **zero re-execution of completed runs** and a
``campaign_summary`` byte-identical to an uninterrupted run; executor
faults (dead workers, broken pools, full disks, torn journals) degrade
the batch, never corrupt it.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.experiments.executor as executor_mod
from repro.experiments.backoff import BackoffPolicy
from repro.experiments.checkpoint import (
    TERMINAL_STATES,
    CampaignCheckpoint,
    RunCheckpoint,
    checkpoint_path,
    load_resume_plan,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.executor import (
    CACHE_WRITE_ERROR_TP,
    CampaignAborted,
    ExperimentExecutor,
    ResultCache,
)
from repro.experiments.runner import ExperimentResult, RunFailure
from repro.faults.executor_chaos import (
    ExecutorChaos,
    ExecutorFaultPlan,
    ExecutorFaultSpec,
    truncate_journal_tail,
)
from repro.obs.campaign import (
    CampaignLog,
    campaign_summary,
    read_campaign,
    read_campaign_with_tail,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def small_config(seed: int = 1, variant: str = "cubic") -> ExperimentConfig:
    return ExperimentConfig(
        variant=variant, weeks=4, warmup_weeks=1, n_flows=2, seed=seed
    )


def failing_payload(payload: dict) -> dict:
    config = ExperimentConfig.from_dict(payload)
    result = ExperimentResult(config=config, duration_ns=config.duration_ns)
    result.failure = RunFailure("Boom", "synthetic crash", config.seed, None, None)
    return result.to_dict()


def no_backoff() -> BackoffPolicy:
    return BackoffPolicy(base_s=0.0, cap_s=0.0)


def summary_bytes(path) -> str:
    return json.dumps(campaign_summary(read_campaign(path)), sort_keys=True)


def spy_executions(monkeypatch):
    """Monkeypatch the (inline-path) worker entry point to record which
    seeds actually execute; returns a thunk yielding the seed list.
    Note: replayed runs contribute their *original* executed/cache
    counters to BatchStats — that is what makes the resumed summary
    byte-identical — so "zero re-execution" must be asserted on real
    worker calls, not on ``stats.executed``."""
    seeds = []
    original = executor_mod.execute_config_dict

    def spy(payload):
        seeds.append(payload["seed"])
        return original(payload)

    monkeypatch.setattr(executor_mod, "execute_config_dict", spy)
    return lambda: seeds


# ----------------------------------------------------------------------
# Checkpoint serialization (property-based)
# ----------------------------------------------------------------------
run_checkpoints = st.builds(
    RunCheckpoint,
    label=st.text(min_size=1, max_size=30),
    index=st.integers(min_value=0, max_value=10_000),
    state=st.sampled_from(TERMINAL_STATES),
    attempts=st.integers(min_value=0, max_value=9),
    retries=st.integers(min_value=0, max_value=9),
    cache_key=st.none() | st.text(alphabet="0123456789abcdef", min_size=8, max_size=64),
    cache_hit=st.booleans(),
    cache_miss=st.booleans(),
    executed=st.booleans(),
    outcome=st.none() | st.just("ok"),
    error_type=st.none() | st.sampled_from(["Boom", "OSError", "WatchdogExceeded"]),
    error_message=st.none() | st.text(max_size=80),
)


class TestCheckpointRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(run=run_checkpoints)
    def test_run_checkpoint_json_round_trip(self, run):
        decoded = RunCheckpoint.from_dict(json.loads(json.dumps(run.to_dict())))
        assert decoded == run

    @settings(max_examples=50, deadline=None)
    @given(runs=st.lists(run_checkpoints, max_size=8), total=st.integers(0, 1000))
    def test_campaign_checkpoint_json_round_trip(self, runs, total):
        checkpoint = CampaignCheckpoint(total=total)
        for run in runs:
            checkpoint.record(run)
        decoded = CampaignCheckpoint.from_dict(
            json.loads(json.dumps(checkpoint.to_dict()))
        )
        assert decoded == checkpoint

    def test_save_load_sidecar(self, tmp_path):
        checkpoint = CampaignCheckpoint(total=2)
        checkpoint.record(RunCheckpoint(label="a", index=0, state="finished"))
        path = tmp_path / "log.jsonl.ckpt.json"
        checkpoint.save(path)
        assert CampaignCheckpoint.load(path) == checkpoint

    def test_load_tolerates_garbage(self, tmp_path):
        path = tmp_path / "bad.ckpt.json"
        path.write_text("{not json")
        assert CampaignCheckpoint.load(path) is None
        assert CampaignCheckpoint.load(tmp_path / "missing.ckpt.json") is None

    def test_rejects_unknown_state(self):
        with pytest.raises(ValueError):
            RunCheckpoint(label="a", index=0, state="running")


# ----------------------------------------------------------------------
# Backoff policy
# ----------------------------------------------------------------------
class TestBackoffPolicy:
    def test_same_seed_same_schedule(self):
        a = BackoffPolicy(seed=7).schedule("fig2/cubic", 6)
        b = BackoffPolicy(seed=7).schedule("fig2/cubic", 6)
        assert a == b

    def test_different_seed_or_label_differ(self):
        base = BackoffPolicy(seed=7).schedule("fig2/cubic", 4)
        assert BackoffPolicy(seed=8).schedule("fig2/cubic", 4) != base
        assert BackoffPolicy(seed=7).schedule("fig2/mptcp", 4) != base

    def test_full_jitter_bounds_and_cap(self):
        policy = BackoffPolicy(base_s=0.1, cap_s=0.5, multiplier=2.0, seed=3)
        for attempt in range(1, 12):
            envelope = policy.envelope_s(attempt)
            assert envelope <= 0.5
            delay = policy.delay_s("run", attempt)
            assert 0.0 <= delay <= envelope

    def test_envelope_growth(self):
        policy = BackoffPolicy(base_s=0.1, cap_s=10.0, multiplier=2.0)
        assert policy.envelope_s(1) == pytest.approx(0.1)
        assert policy.envelope_s(3) == pytest.approx(0.4)

    def test_independent_of_other_runs(self):
        # A draw for (label, attempt) never shifts because other runs
        # also drew — forked substreams, not a shared cursor.
        policy = BackoffPolicy(seed=5)
        before = policy.delay_s("victim", 2)
        policy.schedule("noisy-neighbor", 9)
        assert policy.delay_s("victim", 2) == before

    def test_zero_base_disables_sleeping(self):
        assert no_backoff().schedule("x", 5) == [0.0] * 5

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base_s=-1)
        with pytest.raises(ValueError):
            BackoffPolicy(base_s=2.0, cap_s=1.0)
        with pytest.raises(ValueError):
            BackoffPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy().envelope_s(0)

    def test_executor_sleeps_through_injected_clock(self, monkeypatch):
        monkeypatch.setattr(executor_mod, "execute_config_dict", failing_payload)
        slept = []
        executor = ExperimentExecutor(
            retries=2,
            backoff=BackoffPolicy(base_s=0.05, cap_s=0.2, seed=1),
            sleep=slept.append,
        )
        executor.run_batch([small_config()])
        expected = BackoffPolicy(base_s=0.05, cap_s=0.2, seed=1).schedule(
            "cubic/seed1", 2
        )
        assert slept == [d for d in expected if d > 0]


# ----------------------------------------------------------------------
# Journal tail tolerance
# ----------------------------------------------------------------------
class TestTruncatedJournal:
    def _journal(self, tmp_path):
        path = tmp_path / "camp.jsonl"
        with CampaignLog(str(path)) as log:
            executor = ExperimentExecutor(
                campaign=log, checkpoint_to=checkpoint_path(str(path))
            )
            executor.run_batch([small_config()])
        return path

    def test_tolerant_reader_reports_tail(self, tmp_path):
        path = self._journal(tmp_path)
        whole, tail = read_campaign_with_tail(path)
        assert tail is None
        assert truncate_journal_tail(path)
        records, tail = read_campaign_with_tail(path)
        assert tail is not None
        assert len(records) == len(whole) - 1
        assert read_campaign(path) == records  # default: tolerant
        with pytest.raises(ValueError):
            read_campaign(path, strict=True)

    def test_corrupt_middle_line_still_raises(self, tmp_path):
        path = self._journal(tmp_path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # torn, but not the tail
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt record"):
            read_campaign(path)

    def test_resume_plan_from_torn_journal_without_sidecar(self, tmp_path):
        path = self._journal(tmp_path)
        os.unlink(checkpoint_path(str(path)))
        truncate_journal_tail(path)  # tears the campaign_end record
        plan = load_resume_plan(str(path))
        assert plan.checkpoint_source == "journal"
        assert plan.partial_tail is not None
        assert plan.checkpoint.runs["cubic/seed1"].state == "finished"

    def test_sidecar_preferred_over_journal(self, tmp_path):
        path = self._journal(tmp_path)
        plan = load_resume_plan(str(path))
        assert plan.checkpoint_source == "sidecar"
        assert plan.checkpoint.total == 1


# ----------------------------------------------------------------------
# Cache write failures (ENOSPC et al.)
# ----------------------------------------------------------------------
class TestCacheWriteErrors:
    def test_put_failure_returns_none(self, tmp_path):
        blocker = tmp_path / "cache"
        blocker.write_text("a file where the cache dir should be")
        cache = ResultCache(blocker)
        result = ExperimentExecutor()._run_once(small_config())
        assert result.ok
        assert cache.put("ab" * 32, result) is None
        assert cache.write_errors == 1
        assert cache.last_write_error

    def test_enospc_does_not_crash_batch(self, tmp_path):
        plan = ExecutorFaultPlan(
            specs=(ExecutorFaultSpec(kind="cache_write_error", count=0),)
        )
        emitted = []
        CACHE_WRITE_ERROR_TP.subscribe(lambda t, name, fields: emitted.append(fields))
        try:
            executor = ExperimentExecutor(
                cache_dir=str(tmp_path / "cache"), chaos=ExecutorChaos(plan)
            )
            results = executor.run_batch([small_config(seed=31)])
        finally:
            CACHE_WRITE_ERROR_TP._subscribers.clear()
            CACHE_WRITE_ERROR_TP.enabled = False
        assert results[0].ok
        metric = executor.metrics.get("executor_cache_write_errors_total")
        assert metric is not None and metric.total() == 1
        assert emitted and "No space left" in emitted[0]["error"]
        # nothing was cached: a re-run executes again
        rerun = ExperimentExecutor(cache_dir=str(tmp_path / "cache"))
        rerun.run_batch([small_config(seed=31)])
        assert rerun.last_batch.cache_hits == 0

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        plan = ExecutorFaultPlan(
            specs=(ExecutorFaultSpec(kind="cache_corrupt", count=0),)
        )
        first = ExperimentExecutor(
            cache_dir=str(tmp_path / "cache"), chaos=ExecutorChaos(plan)
        )
        first.run_batch([small_config(seed=32)])
        warm = ExperimentExecutor(cache_dir=str(tmp_path / "cache"))
        results = warm.run_batch([small_config(seed=32)])
        assert results[0].ok
        assert warm.last_batch.cache_hits == 0
        assert warm.last_batch.executed == 1


# ----------------------------------------------------------------------
# Quarantine vs infrastructure failures
# ----------------------------------------------------------------------
class TestQuarantine:
    def test_sim_failure_quarantined_and_not_resubmitted(self, tmp_path, monkeypatch):
        monkeypatch.setattr(executor_mod, "execute_config_dict", failing_payload)
        path = tmp_path / "camp.jsonl"
        with CampaignLog(str(path)) as log:
            executor = ExperimentExecutor(
                campaign=log, retries=1, backoff=no_backoff(),
                checkpoint_to=checkpoint_path(str(path)),
            )
            executor.run_batch([small_config()])
        assert executor.last_batch.quarantined == 1
        records = read_campaign(path)
        assert [r["event"] for r in records if r.get("run")][-1] == "quarantined"
        plan = load_resume_plan(str(path))
        assert plan.checkpoint.runs["cubic/seed1"].state == "quarantined"

        # Resume never re-executes a quarantined run: the recorded
        # failure is handed back without calling the worker at all.
        calls = []
        monkeypatch.setattr(
            executor_mod, "execute_config_dict",
            lambda payload: calls.append(payload) or failing_payload(payload),
        )
        resumed = ExperimentExecutor(resume=plan, backoff=no_backoff())
        results = resumed.run_batch([small_config()])
        assert calls == []
        assert resumed.last_replayed == 1
        assert not results[0].ok
        assert results[0].failure.error_type == "Boom"

    def test_infrastructure_failure_not_quarantined(self, monkeypatch):
        def transport_crash(payload):
            raise OSError("worker transport down")

        monkeypatch.setattr(executor_mod, "execute_config_dict", transport_crash)
        executor = ExperimentExecutor(retries=0, backoff=no_backoff())
        results = executor.run_batch([small_config()])
        assert not results[0].ok
        assert results[0].failure.infrastructure
        assert executor.last_batch.quarantined == 0
        assert executor.last_batch.failures == 1


# ----------------------------------------------------------------------
# Graceful shutdown
# ----------------------------------------------------------------------
class TestGracefulShutdown:
    def test_keyboard_interrupt_aborts_with_record(self, tmp_path, monkeypatch):
        seen = {"n": 0}

        def interrupt_second(payload):
            seen["n"] += 1
            if seen["n"] >= 2:
                raise KeyboardInterrupt()
            return executor_mod.run_experiment(
                ExperimentConfig.from_dict(payload)
            ).to_dict()

        monkeypatch.setattr(executor_mod, "execute_config_dict", interrupt_second)
        path = tmp_path / "camp.jsonl"
        with pytest.raises(CampaignAborted) as abort:
            with CampaignLog(str(path)) as log:
                executor = ExperimentExecutor(
                    campaign=log,
                    cache_dir=str(tmp_path / "cache"),
                    checkpoint_to=checkpoint_path(str(path)),
                    heartbeat_events=2_000,
                )
                executor.run_batch([small_config(seed=41), small_config(seed=42)])
        assert abort.value.done == 1
        assert abort.value.total == 2
        records = read_campaign(path)
        assert records[-1]["event"] == "campaign_abort"
        assert records[-1]["done"] == 1
        # Ordering pinned: every heartbeat precedes its run's terminal
        # record, and everything precedes the abort record.
        abort_seq = records[-1]["seq"]
        finished = {r["run"]: r["seq"] for r in records if r["event"] == "finished"}
        for r in records:
            assert r["seq"] <= abort_seq
            if r["event"] == "heartbeat" and r["run"] in finished:
                assert r["seq"] < finished[r["run"]]
        # The completed run checkpointed; resume replays it and only
        # executes the interrupted one.
        plan = load_resume_plan(str(path))
        assert list(plan.checkpoint.runs) == ["cubic/seed41"]
        monkeypatch.undo()
        executed = spy_executions(monkeypatch)
        resumed = ExperimentExecutor(
            cache_dir=str(tmp_path / "cache"), resume=plan
        )
        results = resumed.run_batch([small_config(seed=41), small_config(seed=42)])
        assert resumed.last_replayed == 1
        assert executed() == [42]  # only the interrupted run re-executes
        assert all(r.ok for r in results)


# ----------------------------------------------------------------------
# Resume identity (in-process)
# ----------------------------------------------------------------------
class TestResumeIdentity:
    def test_partial_then_resume_matches_uninterrupted(self, tmp_path, monkeypatch):
        configs = [small_config(seed=s) for s in (1, 2, 3)]
        ref = tmp_path / "ref.jsonl"
        with CampaignLog(str(ref)) as log:
            ExperimentExecutor(
                cache_dir=str(tmp_path / "cache_ref"), campaign=log
            ).run_batch(configs)

        part = tmp_path / "part.jsonl"
        with CampaignLog(str(part)) as log:
            ExperimentExecutor(
                cache_dir=str(tmp_path / "cache"), campaign=log,
                checkpoint_to=checkpoint_path(str(part)),
            ).run_batch(configs[:2])

        executed = spy_executions(monkeypatch)
        res = tmp_path / "res.jsonl"
        with CampaignLog(str(res)) as log:
            resumed = ExperimentExecutor(
                cache_dir=str(tmp_path / "cache"), campaign=log,
                resume=load_resume_plan(str(part)),
            )
            resumed.run_batch(configs)
        assert resumed.last_replayed == 2
        assert executed() == [3]  # completed runs never re-execute
        assert summary_bytes(res) == summary_bytes(ref)

    def test_replayed_records_flagged_but_summary_identical(self, tmp_path):
        config = small_config(seed=9)
        part = tmp_path / "one.jsonl"
        with CampaignLog(str(part)) as log:
            ExperimentExecutor(
                cache_dir=str(tmp_path / "cache"), campaign=log,
                checkpoint_to=checkpoint_path(str(part)),
            ).run_batch([config])
        res = tmp_path / "one.resumed.jsonl"
        with CampaignLog(str(res)) as log:
            ExperimentExecutor(
                cache_dir=str(tmp_path / "cache"), campaign=log,
                resume=load_resume_plan(str(part)),
            ).run_batch([config])
        records = read_campaign(res)
        replayed = [r for r in records if r.get("replayed")]
        assert replayed  # lifecycle re-emitted, marked
        assert any(r["event"] == "campaign_resume" for r in records)
        assert summary_bytes(res) == summary_bytes(part)


# ----------------------------------------------------------------------
# Chaos harness (in-process pool faults)
# ----------------------------------------------------------------------
class TestExecutorChaos:
    def test_worker_kill_rebuilds_pool_and_completes(self, tmp_path):
        configs = [small_config(seed=s) for s in (1, 2)]
        plan = ExecutorFaultPlan(
            specs=(ExecutorFaultSpec(kind="worker_kill", target="cubic/seed1"),)
        )
        chaos = ExecutorChaos(plan)
        path = tmp_path / "chaos.jsonl"
        with CampaignLog(str(path)) as log:
            executor = ExperimentExecutor(
                jobs=2, campaign=log, chaos=chaos, retries=2,
                backoff=no_backoff(),
            )
            results = executor.run_batch(configs)
        assert all(r.ok for r in results)
        assert executor.last_batch.broken_pools >= 1
        assert chaos.log[0][0] == "worker_kill"
        records = read_campaign(path)
        for label in ("cubic/seed1", "cubic/seed2"):
            terminal = [
                r for r in records
                if r.get("run") == label and r["event"] in ("finished", "failed")
            ]
            assert len(terminal) == 1, (label, terminal)

    def test_broken_pool_budget_exhausted_fails_cleanly(self, tmp_path):
        plan = ExecutorFaultPlan(
            specs=(ExecutorFaultSpec(kind="broken_pool", attempt=0, count=0),)
        )
        executor = ExperimentExecutor(
            jobs=2, chaos=ExecutorChaos(plan), retries=1,
            backoff=no_backoff(), pool_rebuilds=1,
        )
        results = executor.run_batch([small_config(seed=s) for s in (1, 2)])
        assert all(not r.ok for r in results)
        assert all(r.failure.infrastructure for r in results)
        # infrastructure casualties are failed, never quarantined
        assert executor.last_batch.quarantined == 0

    def test_plan_round_trips_through_json(self, tmp_path):
        plan = ExecutorFaultPlan(
            name="gauntlet", seed=3,
            specs=(
                ExecutorFaultSpec(kind="worker_kill", target="a/*",
                                  params={"after_events": 500}),
                ExecutorFaultSpec(kind="cache_write_error", count=0,
                                  probability=0.5),
            ),
        )
        path = tmp_path / "plan.json"
        plan.save(path)
        from repro.faults.executor_chaos import load_executor_fault_plan

        assert load_executor_fault_plan(path) == plan


# ----------------------------------------------------------------------
# SIGKILL integration: a pooled campaign killed -9 mid-flight resumes
# to a byte-identical summary
# ----------------------------------------------------------------------
CHILD_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from repro.experiments.checkpoint import checkpoint_path
from repro.experiments.config import ExperimentConfig
from repro.experiments.executor import ExperimentExecutor
from repro.faults.executor_chaos import ExecutorChaos, ExecutorFaultPlan, ExecutorFaultSpec
from repro.obs.campaign import CampaignLog


def main():
    configs = [
        ExperimentConfig(variant="cubic", weeks=4, warmup_weeks=1, n_flows=2, seed=s)
        for s in (1, 2, 3)
    ]
    # The third run stalls 120s in its worker: the campaign is
    # guaranteed mid-flight (2 finished, 1 running) at the SIGKILL.
    plan = ExecutorFaultPlan(
        specs=(ExecutorFaultSpec(kind="slow_worker", target="cubic/seed3",
                                 params={{"stall_s": 120.0}}),)
    )
    with CampaignLog({log!r}) as log:
        executor = ExperimentExecutor(
            jobs=2, cache_dir={cache!r}, campaign=log,
            checkpoint_to=checkpoint_path({log!r}),
            heartbeat_events=2000, chaos=ExecutorChaos(plan),
        )
        executor.run_batch(configs)


if __name__ == "__main__":  # spawn-safe: workers re-import this module
    main()
"""


class TestSigkillResume:
    def test_kill9_mid_campaign_resume_is_byte_identical(self, tmp_path):
        configs = [small_config(seed=s) for s in (1, 2, 3)]
        log_path = tmp_path / "killed.jsonl"
        script = tmp_path / "child.py"
        script.write_text(
            CHILD_SCRIPT.format(
                src=str(REPO_ROOT / "src"),
                log=str(log_path),
                cache=str(tmp_path / "cache"),
            )
        )
        child = subprocess.Popen(
            [sys.executable, str(script)],
            cwd=str(tmp_path),
            start_new_session=True,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 90.0
            while time.monotonic() < deadline:
                try:
                    text = log_path.read_text()
                except OSError:
                    text = ""
                if text.count('"finished"') >= 2:
                    break
                if child.poll() is not None:
                    pytest.fail("campaign child exited before the kill")
                time.sleep(0.05)
            else:
                pytest.fail("campaign child never finished its first two runs")
            os.killpg(child.pid, signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            try:
                os.killpg(child.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass

        plan = load_resume_plan(str(log_path))
        done = {
            label for label, run in plan.checkpoint.runs.items()
            if run.state == "finished"
        }
        assert done == {"cubic/seed1", "cubic/seed2"}

        resumed_path = tmp_path / "resumed.jsonl"
        with CampaignLog(str(resumed_path)) as log:
            resumed = ExperimentExecutor(
                jobs=2, cache_dir=str(tmp_path / "cache"), campaign=log,
                checkpoint_to=checkpoint_path(str(resumed_path)),
                heartbeat_events=2000, resume=plan,
            )
            results = resumed.run_batch(configs)
        assert all(r.ok for r in results)
        assert resumed.last_replayed == 2  # zero re-execution of done sims

        ref_path = tmp_path / "ref.jsonl"
        with CampaignLog(str(ref_path)) as log:
            ExperimentExecutor(
                jobs=2, cache_dir=str(tmp_path / "cache_ref"), campaign=log,
                heartbeat_events=2000,
            ).run_batch(configs)
        assert summary_bytes(resumed_path) == summary_bytes(ref_path)
