"""TCP connection: handshake, transfer, recovery, timers, FIN."""

import pytest

from repro.net.link import Link
from repro.net.node import Host
from repro.net.packet import TCPSegment
from repro.sim import Simulator
from repro.tcp.config import TCPConfig
from repro.tcp.connection import CLOSED, ESTABLISHED, TCPConnection
from repro.tcp.sockets import create_connection_pair
from repro.tcp.state import CaState
from repro.units import gbps, msec, usec, throughput_gbps

from tests.helpers import bulk_pair, two_hosts


class TestHandshake:
    def test_three_way_handshake(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = create_connection_pair(sim, a, b)
        sim.run(until=usec(200))
        assert client.state == ESTABLISHED
        assert server.state == ESTABLISHED

    def test_on_established_callback(self):
        sim, a, b, _ab, _ba = two_hosts()
        fired = []
        client, server = create_connection_pair(sim, a, b, connect=False)
        client.on_established = lambda: fired.append(sim.now)
        client.connect()
        sim.run(until=usec(200))
        assert len(fired) == 1

    def test_syn_loss_recovered_by_rto(self):
        sim, a, b, ab, _ba = two_hosts()
        # Drop the very first packet on the forward link.
        original = ab.deliver
        state = {"dropped": False}

        def lossy(pkt):
            if not state["dropped"]:
                state["dropped"] = True
                pkt.dropped = True
                return
            original(pkt)

        ab.deliver = lossy
        client, server = create_connection_pair(sim, a, b)
        sim.run(until=msec(20))
        assert client.state == ESTABLISHED
        assert server.state == ESTABLISHED
        assert client.stats.rtos >= 1

    def test_syn_ack_loss_recovered(self):
        sim, a, b, _ab, ba = two_hosts()
        original = ba.deliver
        state = {"dropped": False}

        def lossy(pkt):
            if pkt.syn and not state["dropped"]:
                state["dropped"] = True
                pkt.dropped = True
                return
            original(pkt)

        ba.deliver = lossy
        client, server = create_connection_pair(sim, a, b)
        sim.run(until=msec(30))
        assert client.state == ESTABLISHED
        assert server.state == ESTABLISHED

    def test_connect_from_established_rejected(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, _server = create_connection_pair(sim, a, b)
        sim.run(until=usec(200))
        with pytest.raises(RuntimeError):
            client.connect()


class TestBulkTransfer:
    def test_fills_the_pipe(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = bulk_pair(sim, a, b)
        sim.run(until=msec(20))
        thr = throughput_gbps(server.stats.bytes_delivered, msec(20))
        assert thr > 9.0  # 10 Gbps link

    def test_fixed_transfer_completes(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = create_connection_pair(sim, a, b)
        client.write(150_000)
        sim.run(until=msec(20))
        assert server.stats.bytes_delivered == 150_000
        assert client.snd_una == client.snd_nxt

    def test_delivery_callback_monotone(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = create_connection_pair(sim, a, b)
        seen = []
        server.on_delivered = lambda t, rcv: seen.append(rcv)
        client.write(50_000)
        sim.run(until=msec(10))
        assert seen == sorted(seen)
        assert seen[-1] == 50_000

    def test_mss_respected(self):
        sim, a, b, ab, _ba = two_hosts()
        sizes = []
        original = ab.deliver
        ab.deliver = lambda p: (sizes.append(p.payload_len), original(p))
        client, _server = bulk_pair(sim, a, b, config=TCPConfig(mss=1000))
        sim.run(until=msec(1))
        assert max(sizes) == 1000

    def test_receive_window_limits_inflight(self):
        sim, a, b, _ab, _ba = two_hosts()
        cfg = TCPConfig(rwnd_packets=4, mss=1500)
        client, _server = bulk_pair(sim, a, b, config=cfg)
        sim.run(until=msec(5))
        assert client.snd_nxt - client.snd_una <= 4 * 1500 + 1500


class TestLossRecovery:
    def _lossy_pair(self, drop_seqs, queue=None):
        sim, a, b, ab, _ba = two_hosts(forward_queue=queue)
        dropped = []
        original = ab.deliver

        def lossy(pkt):
            if pkt.payload_len and pkt.seq in drop_seqs and pkt.seq not in dropped:
                dropped.append(pkt.seq)
                pkt.dropped = True
                return
            original(pkt)

        ab.deliver = lossy
        client, server = bulk_pair(sim, a, b)
        return sim, client, server

    def test_single_loss_fast_recovery(self):
        sim, client, server = self._lossy_pair({1 + 1500 * 5})
        sim.run(until=msec(10))
        assert client.stats.retransmissions >= 1
        assert client.stats.rtos == 0  # recovered without timeout
        assert client.stats.fast_recoveries >= 1
        # The stream is complete at the receiver.
        assert server.recv_buffer.ooo_bytes == 0
        assert server.stats.bytes_delivered > 1_000_000

    def test_burst_loss_recovered(self):
        drop = {1 + 1500 * k for k in range(5, 12)}
        sim, client, server = self._lossy_pair(drop)
        sim.run(until=msec(20))
        assert server.recv_buffer.ooo_bytes == 0
        assert client.stats.retransmissions >= 7
        assert server.stats.bytes_delivered > 1_000_000

    def test_queue_overflow_losses_recovered(self):
        sim, a, b, ab, _ba = two_hosts(forward_queue=16)
        client, server = bulk_pair(sim, a, b)
        sim.run(until=msec(30))
        assert ab.drops > 0
        assert client.stats.retransmissions >= ab.drops
        assert server.recv_buffer.ooo_bytes == 0
        thr = throughput_gbps(server.stats.bytes_delivered, msec(30))
        assert thr > 8.5  # losses handled without collapsing

    def test_cwnd_reduced_on_loss(self):
        sim, client, server = self._lossy_pair({1 + 1500 * 50})
        sim.run(until=msec(10))
        path = client.paths[0]
        assert path.cc.ssthresh != float("inf")

    def test_state_machine_returns_to_open(self):
        sim, client, server = self._lossy_pair({1 + 1500 * 5})
        sim.run(until=msec(10))
        assert client.paths[0].ca_state == CaState.OPEN


class TestRTO:
    def test_total_blackhole_triggers_rto(self):
        sim, a, b, ab, _ba = two_hosts()
        client, server = bulk_pair(sim, a, b)
        sim.run(until=msec(2))
        # Blackhole everything from now on.
        ab.deliver = lambda pkt: None
        before = client.stats.rtos
        sim.run(until=msec(20))
        assert client.stats.rtos > before
        assert client.paths[0].cc.cwnd <= 2

    def test_rto_backoff_doubles(self):
        sim, a, b, ab, _ba = two_hosts()
        client, _server = bulk_pair(sim, a, b)
        sim.run(until=msec(2))
        ab.deliver = lambda pkt: None
        sim.run(until=msec(40))
        assert client._rto_backoff >= 2

    def test_recovery_after_blackhole_heals(self):
        sim, a, b, ab, _ba = two_hosts()
        client, server = bulk_pair(sim, a, b)
        sim.run(until=msec(2))
        original, ab.deliver = ab.deliver, lambda pkt: None
        sim.run(until=msec(6))
        ab.deliver = original
        delivered_before = server.stats.bytes_delivered
        sim.run(until=msec(30))
        assert server.stats.bytes_delivered > delivered_before
        assert server.recv_buffer.ooo_bytes == 0


class TestFin:
    def test_clean_close(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = create_connection_pair(sim, a, b)
        client.write(30_000)
        client.close()
        sim.run(until=msec(10))
        assert server.stats.bytes_delivered == 30_000
        assert client.state == CLOSED
        assert server.state == "close-wait"

    def test_peer_fin_callback(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = create_connection_pair(sim, a, b)
        fired = []
        server.on_peer_fin = lambda: fired.append(True)
        client.write(1000)
        client.close()
        sim.run(until=msec(10))
        assert fired == [True]


class TestECN:
    def test_ece_echo_reduces_window(self):
        sim, a, b, ab, _ba = two_hosts()
        cfg = TCPConfig(ecn_enabled=True)
        client, server = bulk_pair(sim, a, b, cc_name="reno", config=cfg)
        sim.run(until=msec(1))
        # Mark a data packet CE in flight by wrapping the link.
        original = ab.deliver

        def marker(pkt):
            if pkt.payload_len:
                pkt.ce = True
            original(pkt)

        ab.deliver = marker
        cwnd_before = client.paths[0].cc.cwnd
        sim.run(until=msec(2))
        assert client.stats.ecn_reductions >= 1
        assert client.paths[0].cc.cwnd < cwnd_before * 1.5

    def test_no_ecn_without_capability(self):
        sim, a, b, ab, _ba = two_hosts()
        client, _server = bulk_pair(sim, a, b, cc_name="reno")
        original = ab.deliver

        def marker(pkt):
            pkt.ce = True  # marked, but flow is not ECN-capable
            original(pkt)

        ab.deliver = marker
        sim.run(until=msec(2))
        assert client.stats.ecn_reductions == 0


class TestSpuriousAccounting:
    def test_reordering_counted_not_lost(self):
        """Artificial reordering on the link: SACK holes appear, and
        any retransmissions get flagged spurious via ground truth."""
        sim, a, b, ab, _ba = two_hosts()
        held = []
        original = ab.deliver

        def reorder(pkt):
            # Hold every 20th data packet for 300 us.
            if pkt.payload_len and (pkt.seq // 1500) % 20 == 5:
                held.append(pkt)
                sim.schedule(usec(300), original, pkt)
                return
            original(pkt)

        ab.deliver = reorder
        client, server = bulk_pair(sim, a, b)
        sim.run(until=msec(20))
        assert held
        assert client.stats.reordering_events
        # Ground truth: any retransmission of a held packet is spurious.
        if client.stats.retransmissions:
            assert client.stats.spurious_retransmissions > 0
