"""Figure 4 end-to-end: per-TDN congestion state machines.

"(Dashed blue) segments from TDN 0 are ignored since they belong to a
different TDN and their ACKs are very likely just delayed. Only one
(dashed pink) segment belonging to TDN 1 is confirmed as a true loss,
which will be retransmitted. TDN 0 remains in Open state and is allowed
to continue sending at full speed; TDN 1, on the other hand, enters
Recovery state due to the loss."
"""

import pytest

from repro.core.tdtcp import TDTCPConnection
from repro.net.packet import TDNNotification
from repro.tcp.sockets import create_connection_pair
from repro.tcp.state import CaState
from repro.units import msec, usec

from tests.helpers import two_hosts


def _figure4_scenario():
    """Recreate Figure 4: a TDN switch with (a) delayed TDN-0 data in
    flight and (b) one genuinely lost TDN-1 segment after the switch.
    Returns (sim, client, server, held_seqs, dropped_seqs)."""
    sim, a, b, ab, _ba = two_hosts(one_way_ns=usec(20))
    held = []
    dropped = []
    original = ab.deliver

    def impair(pkt):
        if not pkt.payload_len:
            original(pkt)
            return
        # Tail of TDN-0 data: delayed on the slow path (blue dashed).
        if pkt.data_tdn == 0 and sim.now > usec(990) and len(held) < 6:
            held.append(pkt.seq)
            sim.schedule(usec(45), original, pkt)
            return
        # One early TDN-1 segment: a true loss (pink dashed).
        if pkt.data_tdn == 1 and not dropped and not pkt.retransmission:
            dropped.append(pkt.seq)
            pkt.dropped = True
            return
        original(pkt)

    ab.deliver = impair
    client, server = create_connection_pair(
        sim, a, b, connection_cls=TDTCPConnection, tdn_count=2
    )
    client.start_bulk()
    sim.run(until=msec(1))
    a.deliver(TDNNotification("tor0", a.address, tdn_id=1))
    b.deliver(TDNNotification("tor1", b.address, tdn_id=1))
    return sim, client, server, held, dropped


class TestFigure4:
    def test_only_the_true_loss_is_retransmitted(self):
        sim, client, server, held, dropped = _figure4_scenario()
        sim.run(until=msec(1) + usec(400))
        assert held and dropped
        retx_seqs = {
            seg.seq
            for seg in client.segments.values()
            if seg.retx_count > 0
        }
        # The genuinely dropped TDN-1 segment was retransmitted...
        assert dropped[0] in retx_seqs or client.snd_una > dropped[0]
        # ...and none of the delayed TDN-0 segments were.
        assert not (set(held) & retx_seqs)

    def test_tdn1_enters_recovery_tdn0_stays_open(self):
        sim, client, server, held, dropped = _figure4_scenario()
        # Probe state shortly after the loss is detected.
        deadline = msec(1) + usec(400)
        states = {"tdn1_recovered": False, "tdn0_always_open": True}

        def probe():
            if client.paths[1].ca_state == CaState.RECOVERY:
                states["tdn1_recovered"] = True
            if client.paths[0].ca_state != CaState.OPEN:
                states["tdn0_always_open"] = False
            if sim.now < deadline:
                sim.schedule(usec(5), probe)

        sim.schedule(usec(5), probe)
        sim.run(until=deadline)
        assert states["tdn1_recovered"], "TDN 1 never entered recovery"
        assert states["tdn0_always_open"], "TDN 0 was disturbed by TDN 1's loss"

    def test_stream_completes_after_transition(self):
        sim, client, server, held, dropped = _figure4_scenario()
        sim.run(until=msec(4))
        assert server.recv_buffer.ooo_bytes == 0
        assert client.stats.spurious_retransmissions <= 1
