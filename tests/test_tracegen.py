"""Empirical flow-size distributions and the mixed workload."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.tracegen import (
    DATA_MINING_CDF,
    EmpiricalFlowSizes,
    EmpiricalWorkload,
    WEB_SEARCH_CDF,
)
from repro.metrics.cdf import quantile
from repro.sim.rng import SeededRandom
from repro.units import gbps, msec, usec

from tests.helpers import two_hosts


class TestEmpiricalFlowSizes:
    def test_websearch_median_in_published_band(self):
        sampler = EmpiricalFlowSizes(WEB_SEARCH_CDF, SeededRandom(5))
        samples = [sampler.sample() for _ in range(20_000)]
        # Published CDF: ~50% of flows below ~100 KB.
        median = quantile(samples, 0.5)
        assert 30_000 < median < 300_000

    def test_datamining_is_heavy_tailed(self):
        sampler = EmpiricalFlowSizes(DATA_MINING_CDF, SeededRandom(5))
        samples = [sampler.sample() for _ in range(20_000)]
        # Most flows tiny, a few enormous: mean >> median.
        median = quantile(samples, 0.5)
        mean = sum(samples) / len(samples)
        assert median < 2_000
        assert mean > median * 100

    def test_samples_within_support(self):
        sampler = EmpiricalFlowSizes(WEB_SEARCH_CDF, SeededRandom(5))
        for _ in range(2_000):
            size = sampler.sample()
            assert WEB_SEARCH_CDF[0][1] <= size <= WEB_SEARCH_CDF[-1][1]

    def test_deterministic_given_seed(self):
        a = EmpiricalFlowSizes(WEB_SEARCH_CDF, SeededRandom(9))
        b = EmpiricalFlowSizes(WEB_SEARCH_CDF, SeededRandom(9))
        assert [a.sample() for _ in range(50)] == [b.sample() for _ in range(50)]

    def test_invalid_cdfs_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalFlowSizes([(0.0, 10)], SeededRandom(1))
        with pytest.raises(ValueError):
            EmpiricalFlowSizes([(0.1, 10), (1.0, 20)], SeededRandom(1))
        with pytest.raises(ValueError):
            EmpiricalFlowSizes([(0.0, 10), (0.6, 20), (0.5, 30), (1.0, 40)], SeededRandom(1))

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20)
    def test_mean_finite_positive(self, seed):
        sampler = EmpiricalFlowSizes(DATA_MINING_CDF, SeededRandom(seed))
        assert sampler.mean() > 0


class TestClosedFormMean:
    def test_matches_million_sample_monte_carlo(self):
        # The closed form (probability-weighted logarithmic bin means)
        # replaced the old 2,000-sample estimate; pin it against a
        # 1M-sample Monte-Carlo within 1%.
        for cdf in (WEB_SEARCH_CDF, DATA_MINING_CDF):
            sampler = EmpiricalFlowSizes(cdf, SeededRandom(7))
            exact = sampler.mean()
            n = 1_000_000
            mc = sum(sampler.sample() for _ in range(n)) / n
            assert abs(mc - exact) / exact < 0.01

    def test_degenerate_bin_uses_its_size(self):
        sampler = EmpiricalFlowSizes(((0.0, 500), (1.0, 500)), SeededRandom(1))
        assert sampler.mean() == pytest.approx(500.0)

    def test_mean_is_deterministic(self):
        # No sampling left in the mean: independent instances agree to
        # the bit, whatever their RNG state.
        a = EmpiricalFlowSizes(WEB_SEARCH_CDF, SeededRandom(1))
        b = EmpiricalFlowSizes(WEB_SEARCH_CDF, SeededRandom(999))
        b.sample()
        assert a.mean() == b.mean()

    def test_mean_estimate_is_deprecated_alias(self):
        sampler = EmpiricalFlowSizes(DATA_MINING_CDF, SeededRandom(7))
        with pytest.deprecated_call():
            assert sampler.mean_estimate(samples=500) == sampler.mean()


class TestEmpiricalWorkload:
    def test_flows_sample_varied_sizes(self):
        """Heavy-tailed sizes mean sparse arrivals (~60 flows/s at 10G,
        30% load): a few hundred ms of simulated time is needed."""
        sim, a, b, _ab, _ba = two_hosts()
        workload = EmpiricalWorkload(
            sim, a, b, SeededRandom(3),
            cdf=DATA_MINING_CDF, load=0.5, capacity_bps=gbps(10),
        )
        workload.start()
        sim.run(until=msec(400))
        workload.stop()
        sizes = {r.size_bytes for r in workload.stats.records}
        assert len(workload.stats.records) > 5
        assert len(sizes) > 3  # genuinely varied

    def test_small_flows_complete(self):
        sim, a, b, _ab, _ba = two_hosts()
        workload = EmpiricalWorkload(
            sim, a, b, SeededRandom(3),
            cdf=DATA_MINING_CDF, load=0.5, capacity_bps=gbps(10),
        )
        workload.start()
        sim.run(until=msec(400))
        workload.stop()
        sim.run(until=msec(450))
        small = [r for r in workload.stats.records if r.size_bytes < 50_000]
        assert small
        done = [r for r in small if r.completed]
        assert len(done) / len(small) > 0.8

    def test_invalid_load(self):
        sim, a, b, _ab, _ba = two_hosts()
        for load in (1.5, 0.0, -0.1):
            with pytest.raises(ValueError):
                EmpiricalWorkload(
                    sim, a, b, SeededRandom(3),
                    cdf=DATA_MINING_CDF, load=load, capacity_bps=gbps(10),
                )

    def test_full_load_accepted(self):
        # load == 1.0 (line rate) used to be rejected by an exclusive
        # upper bound; it is a legitimate operating point.
        sim, a, b, _ab, _ba = two_hosts()
        workload = EmpiricalWorkload(
            sim, a, b, SeededRandom(3),
            cdf=DATA_MINING_CDF, load=1.0, capacity_bps=gbps(10),
        )
        assert workload.mean_interarrival_ns >= 1

    def test_interarrival_rounds_to_nearest(self):
        # Truncation biased every gap short, inflating achieved load;
        # the gap is now round(SEC / rate). A fixed 1000-byte CDF at
        # capacity 3 Gbps, load 1.0: rate = 375_000 flows/s, so the
        # exact gap is 2666.67 ns -> 2667, not 2666.
        sim, a, b, _ab, _ba = two_hosts()
        workload = EmpiricalWorkload(
            sim, a, b, SeededRandom(3),
            cdf=((0.0, 1_000), (1.0, 1_000)), load=1.0, capacity_bps=3e9,
        )
        assert workload.mean_interarrival_ns == 2667
