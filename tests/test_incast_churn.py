"""Incast (many-to-one) and flow churn."""

import pytest

from repro.apps.bulk import BulkReceiver, BulkSender
from repro.apps.incast import IncastCoordinator, run_incast
from repro.core.tdtcp import TDTCPConnection
from repro.metrics.cdf import quantile
from repro.rdcn.topology import build_two_rack_testbed
from repro.tcp.connection import TCPConnection
from repro.tcp.sockets import create_connection_pair
from repro.units import msec, usec

from tests.helpers import small_rdcn


class TestIncast:
    def test_rounds_complete_barrier_style(self):
        tb = build_two_rack_testbed(small_rdcn(n_hosts=4))
        coordinator = run_incast(tb, n_workers=4, duration_ns=tb.config.week_ns * 15)
        done = coordinator.stats.completed
        assert len(done) >= 3
        # Rounds are sequential: each starts after the previous finished.
        for earlier, later in zip(done, done[1:]):
            assert later.start_ns >= earlier.completed_ns

    def test_round_times_positive_and_sane(self):
        tb = build_two_rack_testbed(small_rdcn(n_hosts=4))
        coordinator = run_incast(tb, n_workers=4, duration_ns=tb.config.week_ns * 15)
        times = coordinator.stats.round_times_us()
        assert times
        # 4 x 30 KB over a >=10 Gbps bottleneck: at least ~96 us, and
        # bounded by a few weeks even with transition losses.
        assert min(times) > 50
        assert quantile(times, 0.5) < 3 * tb.config.week_ns / 1000

    def test_goodput_positive(self):
        tb = build_two_rack_testbed(small_rdcn(n_hosts=4))
        coordinator = run_incast(tb, n_workers=4, duration_ns=tb.config.week_ns * 15)
        assert coordinator.goodput_gbps() > 0.5

    def test_tdtcp_survives_incast(self):
        """Per-TDN state must not break under N-to-1 convergence."""
        tb = build_two_rack_testbed(small_rdcn(n_hosts=6))
        coordinator = run_incast(
            tb, n_workers=6, duration_ns=tb.config.week_ns * 20,
            connection_cls=TDTCPConnection, tdn_count=2,
        )
        assert len(coordinator.stats.completed) >= 3
        for sender in coordinator.senders:
            sender.check_invariants()

    def test_wider_fanin_slows_rounds(self):
        """More workers per round -> longer rounds (the incast squeeze
        on the shared aggregator link)."""
        def median_round(n_workers):
            tb = build_two_rack_testbed(small_rdcn(n_hosts=8))
            coordinator = run_incast(
                tb, n_workers=n_workers, duration_ns=tb.config.week_ns * 20
            )
            return quantile(coordinator.stats.round_times_us(), 0.5)

        assert median_round(8) > median_round(2)


class TestFlowChurn:
    def test_remaining_flow_absorbs_released_bandwidth(self):
        """§5.1 starts all flows together; real fabrics churn. When one
        of two flows finishes, the survivor's rate must grow."""
        tb = build_two_rack_testbed(small_rdcn(n_hosts=2))
        flows = []
        for index in range(2):
            client, server = create_connection_pair(
                tb.sim, tb.host(0, index), tb.host(1, index)
            )
            receiver = BulkReceiver(server)
            sender = BulkSender(client)
            flows.append((client, server, sender, receiver))
        tb.start()
        week = tb.config.week_ns
        tb.sim.run(until=week * 12)
        # Flow 1 departs; give the survivor a few weeks to grow into
        # the freed share (CUBIC converges slowly at microsecond RTTs).
        flows[1][2].finish()
        survivor_before = flows[0][3].delivered_bytes
        tb.sim.run(until=week * 18)
        mid = flows[0][3].delivered_bytes
        tb.sim.run(until=week * 30)
        after = flows[0][3].delivered_bytes
        rate_shared = survivor_before / 12
        rate_alone = (after - mid) / 12
        assert rate_alone > rate_shared * 1.25

    def test_late_joining_flow_gets_share(self):
        tb = build_two_rack_testbed(small_rdcn(n_hosts=2))
        client0, server0 = create_connection_pair(tb.sim, tb.host(0, 0), tb.host(1, 0))
        BulkReceiver(server0)
        BulkSender(client0)
        tb.start()
        week = tb.config.week_ns
        tb.sim.run(until=week * 10)
        # Second flow joins late.
        client1, server1 = create_connection_pair(tb.sim, tb.host(0, 1), tb.host(1, 1))
        late_receiver = BulkReceiver(server1)
        BulkSender(client1)
        tb.sim.run(until=week * 30)
        early_bytes = server0.stats.bytes_delivered
        late_bytes = late_receiver.delivered_bytes
        assert late_bytes > 0
        # The latecomer converges toward a meaningful share.
        assert late_bytes > early_bytes * 0.1
