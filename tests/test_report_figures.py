"""Figure definitions and text reports at smoke scale."""

import pytest

from repro.experiments.figures import (
    bw_only_rdcn,
    fig2,
    fig11,
    latency_only_rdcn,
    run_figure,
)
from repro.experiments.report import (
    figure_to_csv,
    headline_claims,
    render_cdf_summary,
    render_headline_claims,
    render_seq_graph,
    render_throughput_summary,
    render_voq_graph,
)

SMALL = dict(weeks=6, warmup_weeks=2, n_flows=2)


@pytest.fixture(scope="module")
def fig2_small():
    return fig2(**SMALL)


class TestFigureDefinitions:
    def test_fig2_contents(self, fig2_small):
        data = fig2_small
        assert set(data.seq_curves) == {"cubic", "mptcp"}
        assert data.optimal is not None
        assert data.packet_only is not None
        assert data.throughputs_gbps["cubic"] > 0

    def test_curves_are_tiled_weeks(self, fig2_small):
        times, values = fig2_small.seq_curves["cubic"]
        assert times[-1] >= 2 * fig2_small.rdcn.week_ns
        assert values[-1] >= values[0]

    def test_bw_only_rdcn_equalizes_latency(self):
        rdcn = bw_only_rdcn()
        assert rdcn.optical_one_way_ns == rdcn.packet_one_way_ns
        assert rdcn.optical_rate_bps != rdcn.packet_rate_bps

    def test_latency_only_rdcn_equalizes_rate(self):
        rdcn = latency_only_rdcn(100.0)
        assert rdcn.optical_rate_bps == rdcn.packet_rate_bps
        assert rdcn.optical_one_way_ns != rdcn.packet_one_way_ns

    def test_fig11_variants(self):
        data = fig11(**SMALL)
        assert set(data.throughputs_gbps) == {"tdtcp", "tdtcp-unopt"}

    def test_run_figure_custom(self):
        data = run_figure("custom", bw_only_rdcn(), ("cubic",), weeks=6,
                          warmup_weeks=2, n_flows=2)
        assert data.name == "custom"
        assert list(data.seq_curves) == ["cubic"]


class TestReports:
    def test_seq_graph_renders(self, fig2_small):
        text = render_seq_graph(fig2_small)
        assert "optimal" in text
        assert "packet-only" in text
        assert "cubic" in text
        # A numeric table with one row per sample.
        assert len(text.splitlines()) > 10

    def test_voq_graph_renders(self, fig2_small):
        text = render_voq_graph(fig2_small)
        assert "jumbo" in text
        text_pkts = render_voq_graph(fig2_small, jumbo_equivalent=False)
        assert "packets" in text_pkts

    def test_throughput_summary(self, fig2_small):
        text = render_throughput_summary(fig2_small)
        assert "Gbps" in text
        assert "optimal" in text

    def test_headline_claims(self, fig2_small):
        claims = headline_claims(fig2_small)
        assert "tdtcp_vs_cubic_pct" not in claims  # tdtcp not in fig2
        text = render_headline_claims(fig2_small)
        assert "headline" in text

    def test_cdf_summary(self):
        text = render_cdf_summary("x", {"cubic": [0, 1, 2, 3], "tdtcp": [0, 0, 0, 1]})
        assert "p50" in text and "zero-days" in text
        assert "cubic" in text and "tdtcp" in text

    def test_cdf_summary_empty(self):
        text = render_cdf_summary("x", {"cubic": []})
        assert "cubic" in text  # no crash on empty

    def test_csv_export(self, fig2_small, tmp_path):
        written = figure_to_csv(fig2_small, tmp_path)
        assert any("seq" in path for path in written)
        assert any("throughput" in path for path in written)
        for path in written:
            content = open(path).read()
            assert content.strip()
