"""Extensions beyond the headline reproduction: extra CCAs, per-TDN
CCAs, background traffic, the N-rack rotor schedule, sweeps, CLI."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.background import BackgroundTraffic
from repro.core.tdtcp import TDTCPConnection
from repro.experiments.cli import main as cli_main
from repro.experiments.sweeps import day_length_sweep, duty_ratio_sweep
from repro.rdcn.rotor import (
    matching_index_for_pair,
    round_robin_matchings,
    schedule_for_pair,
)
from repro.sim import SeededRandom, Simulator
from repro.tcp.cc import HighSpeedCC, WestwoodCC, make_congestion_control
from repro.tcp.cc.highspeed import hstcp_a, hstcp_b
from repro.tcp.sockets import create_connection_pair
from repro.units import gbps, msec, usec

from tests.helpers import two_hosts


class FakeClock:
    def __init__(self):
        self.t = 0

    def now_ns(self):
        return self.t

    def advance(self, ns):
        self.t += ns


class TestHighSpeedCC:
    def test_registered(self):
        cc = make_congestion_control("highspeed", FakeClock())
        assert isinstance(cc, HighSpeedCC)

    def test_reno_regime_below_38(self):
        assert hstcp_a(20) == 1.0
        assert hstcp_b(20) == 0.5

    def test_aggressive_above_38(self):
        assert hstcp_a(1000) > 1.0
        assert hstcp_b(1000) < 0.5

    def test_monotone_response(self):
        a_values = [hstcp_a(w) for w in (50, 200, 1000, 10_000)]
        assert a_values == sorted(a_values)
        b_values = [hstcp_b(w) for w in (50, 200, 1000, 10_000)]
        assert b_values == sorted(b_values, reverse=True)

    def test_large_window_reduction_is_gentle(self):
        cc = HighSpeedCC(FakeClock(), initial_cwnd=1000)
        cc.on_congestion_event()
        assert cc.cwnd > 600  # b(1000) ~ 0.33, far gentler than 0.5

    def test_growth_faster_than_reno_at_large_window(self):
        cc = HighSpeedCC(FakeClock(), initial_cwnd=1000)
        cc.ssthresh = 500  # congestion avoidance
        cc.on_ack(1000, usec(100), 1000)
        assert cc.cwnd > 1001.0  # reno would add exactly 1


class TestWestwoodCC:
    def test_registered(self):
        cc = make_congestion_control("westwood", FakeClock())
        assert isinstance(cc, WestwoodCC)

    def test_bandwidth_estimate_converges(self):
        clock = FakeClock()
        cc = WestwoodCC(clock, initial_cwnd=10, mss=1500)
        # 10 packets per 100 us = 1500*8*10 / 100us = 1.2 Gbps.
        for _ in range(100):
            clock.advance(usec(100))
            cc.on_ack(10, usec(100), 10)
        assert cc.bw_estimate_bps == pytest.approx(1.2e9, rel=0.3)

    def test_loss_sets_window_to_bdp(self):
        clock = FakeClock()
        cc = WestwoodCC(clock, initial_cwnd=100, mss=1500)
        for _ in range(100):
            clock.advance(usec(100))
            cc.on_ack(10, usec(100), 10)
        cc.cwnd = 100
        cc.on_congestion_event()
        # BDP = 1.2 Gbps * 100 us / (8 * 1500) = 10 packets.
        assert cc.ssthresh == pytest.approx(10, rel=0.5)

    def test_loss_without_estimate_halves(self):
        cc = WestwoodCC(FakeClock(), initial_cwnd=40)
        cc.on_congestion_event()
        assert cc.cwnd == 20


class TestPerTDNCCAs:
    def test_distinct_ccas_per_tdn(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = create_connection_pair(
            sim, a, b,
            connection_cls=TDTCPConnection,
            tdn_count=2,
            cc_names=["reno", "cubic"],
        )
        sim.run(until=usec(300))
        assert client.paths[0].cc.name == "reno"
        assert client.paths[1].cc.name == "cubic"

    def test_new_tdn_beyond_list_uses_default(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, _server = create_connection_pair(
            sim, a, b,
            connection_cls=TDTCPConnection,
            tdn_count=2,
            cc_name="cubic",
            cc_names=["reno", "dctcp"],
        )
        client.set_current_tdn(3)
        assert client.paths[3].cc.name == "cubic"

    def test_length_mismatch_rejected(self):
        sim, a, b, _ab, _ba = two_hosts()
        with pytest.raises(ValueError):
            TDTCPConnection(sim, a, b.address, 5001, tdn_count=2, cc_names=["reno"])

    def test_mixed_ccas_transfer(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = create_connection_pair(
            sim, a, b,
            connection_cls=TDTCPConnection,
            tdn_count=2,
            cc_names=["cubic", "westwood"],
        )
        client.start_bulk()
        sim.run(until=msec(5))
        assert server.stats.bytes_delivered > 1_000_000


class TestBackgroundTraffic:
    def test_injects_packets(self):
        sim, a, b, _ab, _ba = two_hosts()
        bg = BackgroundTraffic(sim, a, b, rate_bps=gbps(1), rng=SeededRandom(3))
        bg.start()
        sim.run(until=msec(5))
        assert bg.packets_sent > 100

    def test_average_rate_near_target(self):
        sim, a, b, _ab, _ba = two_hosts(rate_bps=gbps(10))
        bg = BackgroundTraffic(sim, a, b, rate_bps=gbps(2), rng=SeededRandom(3))
        bg.start()
        sim.run(until=msec(20))
        assert bg.average_rate_bps(msec(20)) == pytest.approx(2e9, rel=0.5)

    def test_stop_halts_emission(self):
        sim, a, b, _ab, _ba = two_hosts()
        bg = BackgroundTraffic(sim, a, b, rate_bps=gbps(1), rng=SeededRandom(3))
        bg.start()
        sim.run(until=msec(2))
        bg.stop()
        sent = bg.packets_sent
        sim.run(until=msec(4))
        assert bg.packets_sent == sent

    def test_competes_with_tcp(self):
        # TCP alone vs TCP + heavy background on a 10G link.
        def run(with_bg):
            sim, a, b, ab, _ba = two_hosts(forward_queue=64)
            client, server = create_connection_pair(sim, a, b)
            client.start_bulk()
            if with_bg:
                bg = BackgroundTraffic(sim, a, b, rate_bps=gbps(5), rng=SeededRandom(3))
                bg.start()
            sim.run(until=msec(20))
            return server.stats.bytes_delivered

        alone = run(False)
        contended = run(True)
        assert contended < alone * 0.95

    def test_invalid_rate(self):
        sim, a, b, _ab, _ba = two_hosts()
        with pytest.raises(ValueError):
            BackgroundTraffic(sim, a, b, rate_bps=0, rng=SeededRandom(1))


class TestRotorSchedule:
    def test_eight_racks_seven_matchings(self):
        matchings = round_robin_matchings(8)
        assert len(matchings) == 7
        for matching in matchings:
            assert len(matching) == 4  # perfect matching

    @given(st.sampled_from([2, 4, 6, 8, 10, 12]))
    @settings(max_examples=10)
    def test_every_pair_exactly_once(self, n_racks):
        matchings = round_robin_matchings(n_racks)
        seen = [pair for matching in matchings for pair in matching]
        assert len(seen) == len(set(seen))
        expected = n_racks * (n_racks - 1) // 2
        assert len(seen) == expected

    def test_odd_rack_count_rejected(self):
        with pytest.raises(ValueError):
            round_robin_matchings(7)

    def test_matching_index_lookup(self):
        index = matching_index_for_pair(8, 0, 3)
        matchings = round_robin_matchings(8)
        assert (0, 3) in matchings[index]

    def test_pair_schedule_is_papers_ratio(self):
        schedule = schedule_for_pair(8, 0, 1, usec(180), usec(20))
        tdns = [day.tdn_id for day in schedule.days]
        assert len(tdns) == 7
        assert tdns.count(1) == 1
        assert tdns.count(0) == 6

    def test_self_pair_rejected(self):
        with pytest.raises(ValueError):
            matching_index_for_pair(8, 3, 3)


class TestSweeps:
    def test_duty_ratio_sweep_smoke(self):
        result = duty_ratio_sweep(
            packet_days=(2, 6), variants=("cubic", "tdtcp"),
            weeks=8, warmup_weeks=2, n_flows=2,
        )
        table = result.by_label()
        assert set(table) == {"2:1", "6:1"}
        for row in table.values():
            assert row["tdtcp"] > 0 and row["cubic"] > 0
        assert "duty-ratio-sweep" in result.render()

    def test_day_length_sweep_smoke(self):
        result = day_length_sweep(
            day_us_values=(180,), variants=("tdtcp",),
            weeks=8, warmup_weeks=2, n_flows=2,
        )
        assert len(result.points) == 1
        assert result.points[0].throughput_gbps > 0


class TestCLI:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "sweep-ratio" in out

    def test_unknown_target(self, capsys):
        assert cli_main(["fig99"]) == 2

    def test_fig2_small(self, capsys, tmp_path):
        code = cli_main([
            "fig2", "--weeks", "6", "--warmup", "2", "--flows", "2",
            "--csv", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "steady-state throughput" in out
        assert list(tmp_path.glob("fig2_*.csv"))
