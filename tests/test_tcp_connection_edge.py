"""TCP connection edge cases: window limits, ACK validation, TLP,
reorder timer, partial progress."""

import pytest

from repro.net.packet import TCPSegment
from repro.sim import Simulator
from repro.tcp.config import TCPConfig
from repro.tcp.connection import ESTABLISHED, TCPConnection
from repro.tcp.sockets import create_connection_pair
from repro.units import msec, usec

from tests.helpers import bulk_pair, two_hosts


class TestAckValidation:
    def test_ack_with_nothing_outstanding_ignored(self):
        """§4.3 'all TDNs': an ACK is stale/malicious if no data is
        pending on any path."""
        sim, a, b, _ab, _ba = two_hosts()
        client, server = create_connection_pair(sim, a, b)
        sim.run(until=msec(1))
        assert client.total_packets_out() == 0
        snd_una = client.snd_una
        bogus = TCPSegment(
            b.address, a.address, sport=server.local_port, dport=client.local_port,
            ack=10 ** 9, is_ack=True,
        )
        client.receive(bogus)
        assert client.snd_una == snd_una  # untouched

    def test_ack_beyond_snd_nxt_ignored(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = bulk_pair(sim, a, b)
        sim.run(until=msec(1))
        snd_una = client.snd_una
        bogus = TCPSegment(
            b.address, a.address, sport=server.local_port, dport=client.local_port,
            ack=client.snd_nxt + 10 ** 6, is_ack=True,
        )
        client.receive(bogus)
        assert client.snd_una == snd_una

    def test_old_ack_does_not_regress(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = bulk_pair(sim, a, b)
        sim.run(until=msec(2))
        snd_una = client.snd_una
        old = TCPSegment(
            b.address, a.address, sport=server.local_port, dport=client.local_port,
            ack=1, is_ack=True,
        )
        client.receive(old)
        assert client.snd_una == snd_una


class TestWindows:
    def test_peer_rwnd_limits_sender(self):
        sim, a, b, _ab, _ba = two_hosts()
        cfg = TCPConfig(rwnd_packets=8, mss=1500)
        client, _server = bulk_pair(sim, a, b, config=cfg)
        sim.run(until=msec(5))
        assert client.snd_nxt - client.snd_una <= 9 * 1500

    def test_send_buffer_capacity_limits_sender(self):
        sim, a, b, ab, _ba = two_hosts()
        cfg = TCPConfig(send_buffer_packets=6, mss=1500)
        client, _server = bulk_pair(sim, a, b, config=cfg)
        sim.run(until=msec(5))
        assert client.snd_nxt - client.snd_una <= 6 * 1500

    def test_advertised_window_shrinks_with_ooo_data(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = create_connection_pair(sim, a, b)
        sim.run(until=msec(1))
        full = server._advertised_window()
        server.recv_buffer.receive(50_000, 80_000)  # 30 KB out of order
        assert server._advertised_window() == full - 30_000

    def test_advertised_window_has_floor(self):
        sim, a, b, _ab, _ba = two_hosts()
        cfg = TCPConfig(rwnd_packets=4, mss=1500)
        client, server = create_connection_pair(sim, a, b, config=cfg)
        sim.run(until=msec(1))
        server.recv_buffer.receive(50_000, 50_000 + 100 * 1500)
        assert server._advertised_window() >= cfg.mss


class TestTLP:
    def test_tail_loss_probed_before_rto(self):
        """Drop the last segment of a burst: TLP retransmits it well
        before the RTO would."""
        sim, a, b, ab, _ba = two_hosts()
        state = {"armed": False, "dropped": 0}
        original = ab.deliver

        def drop_tail(pkt):
            if state["armed"] and pkt.payload_len and state["dropped"] < 1:
                state["dropped"] += 1
                pkt.dropped = True
                return
            original(pkt)

        ab.deliver = drop_tail
        client, server = create_connection_pair(sim, a, b)
        client.write(30_000)
        sim.run(until=msec(1))
        # Send one more segment and drop exactly it (a pure tail loss).
        state["armed"] = True
        client.write(1_500)
        sim.run(until=msec(1) + usec(800))
        assert state["dropped"] == 1
        assert client.stats.tlp_probes >= 1
        assert client.stats.rtos == 0
        sim.run(until=msec(5))
        assert server.stats.bytes_delivered == 31_500

    def test_tlp_not_armed_when_disabled(self):
        sim, a, b, _ab, _ba = two_hosts()
        cfg = TCPConfig(tlp_enabled=False)
        client, _server = bulk_pair(sim, a, b, config=cfg)
        sim.run(until=msec(5))
        assert client.stats.tlp_probes == 0
        assert not client.tlp_timer.armed or client.total_packets_out() > 0


class TestReorderTimerRecovery:
    def test_true_tail_loss_recovered_by_reorder_timer(self):
        """A dropped segment with deliveries after it, but fewer than
        dupthresh: the RACK reorder timer must still recover it."""
        sim, a, b, ab, _ba = two_hosts()
        state = {"phase": 0}
        original = ab.deliver

        def drop_one_of_three(pkt):
            # In a 3-segment tail, drop the first.
            if pkt.payload_len and state["phase"] == 1:
                state["phase"] = 2
                pkt.dropped = True
                return
            original(pkt)

        ab.deliver = drop_one_of_three
        client, server = create_connection_pair(sim, a, b)
        client.write(30_000)
        sim.run(until=msec(1))
        state["phase"] = 1
        client.write(4_500)  # 3 segments; the first is dropped
        sim.run(until=msec(8))
        assert server.stats.bytes_delivered == 34_500
        assert client.stats.retransmissions >= 1


class TestPartialProgress:
    def test_partial_ack_keeps_recovery(self):
        """Burst loss: partial ACKs advance snd_una without leaving
        recovery until high_seq is passed."""
        sim, a, b, ab, _ba = two_hosts()
        dropped = set()
        original = ab.deliver

        def drop_two(pkt):
            if pkt.payload_len and pkt.seq in (1 + 1500 * 10, 1 + 1500 * 14) \
                    and pkt.seq not in dropped:
                dropped.add(pkt.seq)
                pkt.dropped = True
                return
            original(pkt)

        ab.deliver = drop_two
        client, server = bulk_pair(sim, a, b)
        sim.run(until=msec(10))
        assert len(dropped) == 2
        assert client.stats.fast_recoveries >= 1
        assert server.recv_buffer.ooo_bytes == 0

    def test_snapshot_is_json_friendly(self):
        import json

        sim, a, b, _ab, _ba = two_hosts()
        client, _server = bulk_pair(sim, a, b)
        sim.run(until=msec(2))
        json.dumps(client.snapshot())  # must not raise


class TestStats:
    def test_segments_sent_counts_first_transmissions(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = create_connection_pair(sim, a, b)
        client.write(15_000)
        sim.run(until=msec(5))
        assert client.stats.segments_sent == 11  # SYN + 15000 / 1500

    def test_bytes_acked_tracks_payload(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = create_connection_pair(sim, a, b)
        client.write(15_000)
        sim.run(until=msec(5))
        assert client.stats.bytes_acked == 15_000
