"""Shared-memory ToR buffering: pool admission policies, pooled VOQs,
the squeeze/resize clamp composition, ECN boundary semantics, fault
interaction, and the pool-conservation audit."""

import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.sweeps import POLICY_TAGS
from repro.faults import FaultInjector, FaultPlan, FaultSpec, InvariantAuditor
from repro.net.packet import Packet
from repro.net.queues import (
    BUFFER_POLICIES,
    DropTailQueue,
    ECNMarkingQueue,
    PooledDropTailQueue,
    PooledECNMarkingQueue,
    SharedBufferPool,
)
from repro.obs.telemetry import ObsConfig, Telemetry
from repro.rdcn.config import RDCNConfig
from repro.rdcn.fabric import NetworkPath, RackUplink
from repro.rdcn.opera import OperaConfig
from repro.rdcn.schedule import ScheduleDriver, TDNSchedule
from repro.rdcn.topology import build_two_rack_testbed
from repro.retcp.dynbuf import DynamicBufferController
from repro.sim.rng import SeededRandom
from repro.sim.simulator import Simulator
from repro.units import gbps, usec

from tests.helpers import small_rdcn


def pkt(ecn: bool = False) -> Packet:
    packet = Packet("r0h0", "r1h0", 1500)
    packet.ecn_capable = ecn
    return packet


def fill(queue, n, now=0, ecn=False):
    return sum(1 for _ in range(n) if queue.push(pkt(ecn), now))


# ----------------------------------------------------------------------
# SharedBufferPool policies
# ----------------------------------------------------------------------
class TestPoolPolicies:
    def test_validation(self):
        with pytest.raises(ValueError):
            SharedBufferPool(0)
        with pytest.raises(ValueError):
            SharedBufferPool(8, policy="fair-share")
        with pytest.raises(ValueError):
            SharedBufferPool(8, alpha=0.0)
        assert set(POLICY_TAGS) == set(BUFFER_POLICIES)

    def test_complete_sharing_single_queue_uses_whole_pool(self):
        pool = SharedBufferPool(10, policy="complete-sharing")
        queue = PooledDropTailQueue(pool, name="q0")
        assert fill(queue, 12) == 10
        assert pool.used == 10
        assert pool.free == 0
        assert pool.rejections == 2
        assert queue.drops == 2

    def test_complete_sharing_across_queues(self):
        pool = SharedBufferPool(8, policy="complete-sharing")
        a = PooledDropTailQueue(pool, name="a")
        b = PooledDropTailQueue(pool, name="b")
        assert fill(a, 6) == 6
        # b can only claim what a left free.
        assert fill(b, 6) == 2
        assert pool.used == 8
        assert pool.rejections == 4

    def test_dynamic_threshold_halts_at_alpha_free(self):
        # alpha=1: admit while len < free = total - len, i.e. len < total/2.
        pool = SharedBufferPool(16, policy="dynamic-threshold", alpha=1.0)
        queue = PooledDropTailQueue(pool, name="q0")
        assert fill(queue, 16) == 8
        assert pool.rejections == 8
        # Draining frees cells, so admission resumes.
        assert queue.pop() is not None
        assert pool.used == 7
        assert queue.push(pkt(), 0)

    def test_dynamic_threshold_alpha_scales_borrowing(self):
        # alpha=4, total=20: len < 4*(20-len)  =>  len stops at 16.
        pool = SharedBufferPool(20, policy="dynamic-threshold", alpha=4.0)
        queue = PooledDropTailQueue(pool, name="q0")
        assert fill(queue, 20) == 16

    def test_per_queue_cap_still_enforced(self):
        pool = SharedBufferPool(10, policy="complete-sharing")
        queue = PooledDropTailQueue(pool, capacity=3, name="q0")
        assert fill(queue, 5) == 3
        # Cap-induced drops are NOT pool rejections.
        assert queue.drops == 2
        assert pool.rejections == 0

    def test_pop_releases_cells(self):
        pool = SharedBufferPool(4, policy="complete-sharing")
        queue = PooledDropTailQueue(pool, name="q0")
        fill(queue, 4)
        while queue.pop() is not None:
            pass
        assert pool.used == 0
        assert pool.peak_used == 4

    def test_resize_total_shrink_never_evicts(self):
        pool = SharedBufferPool(8, policy="complete-sharing")
        queue = PooledDropTailQueue(pool, name="q0")
        fill(queue, 8)
        pool.resize_total(4)
        assert len(queue) == 8          # no eviction
        assert pool.free < 0            # oversubscribed until it drains
        assert not queue.push(pkt(), 0)
        for _ in range(5):
            queue.pop()
        assert queue.push(pkt(), 0)

    def test_occupancy_and_reject_listeners(self):
        pool = SharedBufferPool(2, policy="complete-sharing")
        queue = PooledDropTailQueue(pool, name="q0")
        used_seen, rejects = [], []
        pool.subscribe_occupancy(used_seen.append)
        pool.subscribe_reject(lambda name, length: rejects.append((name, length)))
        fill(queue, 3)
        queue.pop()
        assert used_seen == [1, 2, 1]
        assert rejects == [("q0", 2)]


# ----------------------------------------------------------------------
# ECN mark-threshold boundary (the post-enqueue > K convention)
# ----------------------------------------------------------------------
class TestECNBoundary:
    @pytest.mark.parametrize("make", [
        lambda: ECNMarkingQueue(32, 4),
        lambda: PooledECNMarkingQueue(
            SharedBufferPool(32, policy="complete-sharing"), 4
        ),
    ])
    def test_first_mark_is_packet_k_plus_one(self, make):
        queue = make()
        packets = [pkt(ecn=True) for _ in range(6)]
        for p in packets:
            queue.push(p, 0)
        # Post-enqueue occupancy > K marks: packets 1..K (post-enqueue
        # occupancy 1..K) stay clean, the (K+1)-th is the first marked.
        assert [p.ce for p in packets] == [False] * 4 + [True, True]
        assert queue.marks == 2

    def test_non_ecn_capable_never_marked(self):
        queue = ECNMarkingQueue(32, 1)
        packets = [pkt(ecn=False) for _ in range(4)]
        for p in packets:
            queue.push(p, 0)
        assert not any(p.ce for p in packets)
        assert queue.marks == 0


# ----------------------------------------------------------------------
# squeeze x resize x unsqueeze composition (the bugfix)
# ----------------------------------------------------------------------
class TestSqueezeResizeComposition:
    def test_resize_during_squeeze_does_not_override_fault(self):
        queue = DropTailQueue(16)
        queue.squeeze(4)
        queue.resize(50)            # retcpdyn enlarges mid-fault
        assert queue.capacity == 4  # the fault stays in force
        queue.unsqueeze()
        assert queue.capacity == 50  # the controller's value, not 16

    def test_resize_below_squeeze_takes_effect(self):
        queue = DropTailQueue(16)
        queue.squeeze(4)
        queue.resize(2)
        assert queue.capacity == 2
        queue.unsqueeze()
        assert queue.capacity == 2

    def test_plain_squeeze_round_trip(self):
        queue = DropTailQueue(64)
        queue.squeeze(4)
        assert queue.capacity == 4
        queue.unsqueeze()
        assert queue.capacity == 64
        queue.unsqueeze()           # idempotent
        assert queue.capacity == 64

    def test_resqueeze_keeps_original_restore_value(self):
        queue = DropTailQueue(64)
        queue.squeeze(8)
        queue.squeeze(2)
        assert queue.capacity == 2
        queue.unsqueeze()
        assert queue.capacity == 64

    def test_dynbuf_cycle_under_active_squeeze(self):
        # The exact retcpdyn sequence the fault overlaps: lead-resize to
        # circuit size, night-resize back to normal, fault lifted last.
        queue = DropTailQueue(16)
        queue.squeeze(4)
        queue.resize(50)
        queue.resize(16)
        assert queue.capacity == 4
        queue.unsqueeze()
        assert queue.capacity == 16


# ----------------------------------------------------------------------
# Pool-backed fabrics
# ----------------------------------------------------------------------
def pooled_rdcn(policy="dynamic-threshold", alpha=1.0, total=None, **kwargs):
    cfg = small_rdcn(**kwargs)
    from dataclasses import replace

    return replace(
        cfg, buffer_policy=policy, buffer_alpha=alpha, buffer_total_capacity=total
    )


class TestPooledFabric:
    def test_static_builds_no_pools(self):
        testbed = build_two_rack_testbed(small_rdcn())
        assert testbed.pools == {}
        for uplink in testbed.uplinks.values():
            assert type(uplink.queue) is DropTailQueue
        ecn_bed = build_two_rack_testbed(small_rdcn(), ecn=True)
        assert ecn_bed.pools == {}
        assert all(
            type(up.queue) is ECNMarkingQueue for up in ecn_bed.uplinks.values()
        )

    def test_pooled_policies_build_pools(self):
        for policy in ("complete-sharing", "dynamic-threshold"):
            testbed = build_two_rack_testbed(pooled_rdcn(policy=policy, total=48))
            assert sorted(testbed.pools) == [0, 1]
            for rack, uplink in testbed.uplinks.items():
                queue = uplink.queue
                assert type(queue) is PooledDropTailQueue
                assert queue.pool is testbed.pools[rack]
                assert queue.pool.total == 48
                assert queue.pool.policy == policy

    def test_fabric_drain_releases_pool_cells(self):
        # The uplink serve loop inlines the dequeue; it must still give
        # the cell back to the pool.
        sim = Simulator()
        pool = SharedBufferPool(32, policy="complete-sharing")
        queue = PooledDropTailQueue(pool, name="voq-pooled")
        paths = {0: NetworkPath(0, gbps(10), usec(5))}
        uplink = RackUplink(sim, paths, queue, lambda p: None)
        uplink.set_active(0)
        for _ in range(8):
            uplink.enqueue(pkt())
        sim.run()
        assert uplink.tx_packets == 8
        assert len(queue) == 0
        assert pool.used == 0
        assert pool.peak_used > 0

    def test_dynbuf_grows_and_shrinks_pool(self):
        sim = Simulator()
        schedule = TDNSchedule.uniform((0, 0, 1), usec(180), usec(20))
        driver = ScheduleDriver(sim, schedule)
        paths = {
            0: NetworkPath(0, gbps(10), usec(40)),
            1: NetworkPath(1, gbps(100), usec(10), is_circuit=True),
        }
        pool = SharedBufferPool(96, policy="dynamic-threshold")
        uplink = RackUplink(sim, paths, PooledDropTailQueue(pool), lambda p: None)
        DynamicBufferController(
            sim, driver, [uplink],
            normal_capacity=96, circuit_capacity=300,
            lead_ns=usec(150), optical_tdn=1,
        )
        driver.start()
        optical_start = usec(400)
        sim.run(until=optical_start - usec(151))
        assert pool.total == 96
        sim.run(until=optical_start - usec(149))
        assert pool.total == 96 + (300 - 96)
        assert uplink.queue.capacity == pool.total
        sim.run(until=optical_start + usec(181))  # into the night
        assert pool.total == 96
        assert uplink.queue.capacity == 96


# ----------------------------------------------------------------------
# Faults against pool-backed queues
# ----------------------------------------------------------------------
class TestPooledFaults:
    def test_queue_squeeze_clamps_pooled_queue(self):
        sim = Simulator()
        pool = SharedBufferPool(64, policy="complete-sharing")
        queue = PooledDropTailQueue(pool, name="voq-pooled")
        plan = FaultPlan(specs=[FaultSpec(
            kind="queue_squeeze", target="voq-*", at_ns=1000, until_ns=2000,
            params={"capacity": 4},
        )], name="t")
        FaultInjector(sim, plan, SeededRandom(1)).arm(queues={queue.name: queue})
        sim.run(until=1500)
        assert queue.capacity == 4
        assert fill(queue, 6) == 4       # per-queue cap binds below the pool
        assert pool.rejections == 0
        assert queue.drops == 2
        sim.run(until=3000)
        assert queue.capacity == 64
        assert pool.used == 4

    def test_pooled_run_under_fault_plan_audits_clean(self):
        # End-to-end: pooled VOQs + queue_squeeze + rcv_buffer_pressure,
        # fail-mode auditing (pool conservation included). A clean run
        # proves the pooled hot paths keep cells conserved under faults.
        plan = FaultPlan(specs=[
            FaultSpec(kind="queue_squeeze", target="voq-*",
                      at_ns=usec(300), until_ns=usec(900),
                      params={"capacity": 4}),
            FaultSpec(kind="rcv_buffer_pressure", target="r1h*",
                      at_ns=usec(200), until_ns=usec(1200),
                      params={"factor": 0.2}),
        ], name="pooled-faults")
        result = run_experiment(ExperimentConfig(
            variant="dctcp",
            rdcn=pooled_rdcn(policy="dynamic-threshold", alpha=2.0, seed=5),
            n_flows=2, weeks=6, warmup_weeks=1, seed=5,
            collect_voq=False, fault_plan=plan, audit="fail",
        ))
        assert result.ok, result.failure and result.failure.render()
        assert result.audit_report["violation_count"] == 0
        assert result.audit_report["watched_pools"] == 2
        assert result.fault_report["effects"]["queue_squeeze"] > 0
        assert result.aggregate_delivered > 0

    def test_pooled_run_is_deterministic(self):
        config = dict(
            variant="tdtcp",
            rdcn=pooled_rdcn(policy="dynamic-threshold", seed=9),
            n_flows=2, weeks=6, warmup_weeks=1, seed=9, collect_voq=False,
        )
        first = run_experiment(ExperimentConfig(**config))
        second = run_experiment(ExperimentConfig(**config))
        assert first.ok and second.ok
        assert first.aggregate_delivered == second.aggregate_delivered
        assert first.retransmissions == second.retransmissions


# ----------------------------------------------------------------------
# Pool conservation audit + telemetry
# ----------------------------------------------------------------------
class TestPoolObservability:
    def test_watch_queue_registers_pool_and_detects_drift(self):
        sim = Simulator()
        pool = SharedBufferPool(8, policy="complete-sharing")
        queue = PooledDropTailQueue(pool, name="q0")
        auditor = InvariantAuditor(sim)
        auditor.watch_queue(queue)
        assert auditor.pools == [pool]
        fill(queue, 3)
        assert auditor.audit() == []
        pool.used += 1  # simulate a leaked acquire
        found = auditor.audit()
        assert "pool_conservation" in [v["check"] for v in found]

    def test_plain_queue_registers_no_pool(self):
        auditor = InvariantAuditor(Simulator())
        auditor.watch_queue(DropTailQueue(8))
        assert auditor.pools == []

    def test_pool_tracepoints_recorded(self, tmp_path):
        sim = Simulator()
        telemetry = Telemetry(ObsConfig(trace_dir=str(tmp_path), label="pool",
                                        chrome_trace=False, csv=False)).attach(sim)
        pool = SharedBufferPool(2, policy="complete-sharing", name="pool-r0")
        telemetry.instrument_pool(pool, sim)
        queue = PooledDropTailQueue(pool, name="q0")
        fill(queue, 3)
        queue.pop()
        telemetry.finish()
        lines = (tmp_path / "pool.jsonl").read_text().splitlines()
        names = [line for line in lines if "pool:" in line]
        assert any("pool:occupancy" in line for line in names)
        assert any("pool:reject" in line for line in names)


# ----------------------------------------------------------------------
# Config plumbing + the Opera protocol ceiling
# ----------------------------------------------------------------------
class TestConfigPlumbing:
    def test_rdcn_round_trip_with_buffer_fields(self):
        cfg = pooled_rdcn(policy="dynamic-threshold", alpha=2.5, total=80)
        assert RDCNConfig.from_dict(cfg.to_dict()) == cfg

    def test_rdcn_validation(self):
        with pytest.raises(ValueError):
            pooled_rdcn(policy="bogus")
        with pytest.raises(ValueError):
            pooled_rdcn(alpha=-1.0)
        with pytest.raises(ValueError):
            pooled_rdcn(total=0)

    def test_tor_buffer_total_defaults_to_carving(self):
        cfg = small_rdcn()
        assert cfg.tor_buffer_total(n_voqs=3) == 3 * cfg.voq_capacity
        assert pooled_rdcn(total=80).tor_buffer_total(n_voqs=3) == 80

    def test_opera_rotor_ceiling(self):
        OperaConfig(n_racks=64)  # rotor TDN = slot index, ceiling 65
        with pytest.raises(ValueError, match="protocol ceiling"):
            OperaConfig(n_racks=66)

    def test_opera_demand_aware_ceiling(self):
        OperaConfig(n_racks=64, matching_policy="demand-aware")  # ceiling 64
        with pytest.raises(ValueError, match="protocol ceiling"):
            OperaConfig(n_racks=66, matching_policy="demand-aware")

    def test_opera_pool_total_default(self):
        cfg = OperaConfig(n_racks=4, buffer_policy="dynamic-threshold")
        assert cfg.tor_buffer_total == cfg.voq_capacity * 3
        cfg = OperaConfig(n_racks=4, buffer_policy="complete-sharing",
                          buffer_total_capacity=120)
        assert cfg.tor_buffer_total == 120
