"""Fabric-wide workload engine: traffic matrices, trace replay,
streaming completion accounting, seeded determinism (including under
the process pool), load calibration, and the WorkloadConfig wiring."""

import json

import pytest

from repro.apps.engine import (
    CompletionStats,
    TRACE_COLUMNS,
    TraceFlow,
    WALL_SUMMARY_FIELDS,
    WorkloadEngine,
    average_fabric_rate_bps,
    load_trace,
    pair_weights,
    parse_host_address,
    size_bin,
    strip_wall_fields,
    write_trace,
)
from repro.experiments.config import (
    CONFIG_SCHEMA_VERSION,
    ExperimentConfig,
    WorkloadConfig,
)
from repro.experiments.executor import ExperimentExecutor
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.sweeps import load_sweep
from repro.obs.campaign import CampaignLog, campaign_summary
from repro.rdcn.opera import OperaConfig
from repro.sim.rng import SeededRandom

# A degenerate single-size CDF keeps engine tests fast (10 KB flows
# drain in ~100 us) and makes the offered-load arithmetic exact.
FIXED_10KB = ((0.0, 10_000), (1.0, 10_000))


def engine_config(**overrides):
    workload_kwargs = dict(cdf="custom", custom_cdf=FIXED_10KB, load=0.3)
    workload_kwargs.update(overrides.pop("workload", {}))
    workload = WorkloadConfig(**workload_kwargs)
    kwargs = dict(
        variant="cubic", weeks=8, warmup_weeks=0, seed=5,
        collect_voq=False, collect_sequence=False, workload=workload,
    )
    kwargs.update(overrides)
    return ExperimentConfig(**kwargs)


class TestPairWeights:
    def test_permutation_is_a_ring(self):
        weighted = pair_weights(4, "permutation", SeededRandom(1))
        assert [pair for pair, _w in weighted] == [(0, 1), (1, 2), (2, 3), (3, 0)]
        assert all(w == pytest.approx(0.25) for _p, w in weighted)

    def test_all_to_all_uniform_over_ordered_pairs(self):
        weighted = pair_weights(3, "all-to-all", SeededRandom(1))
        assert len(weighted) == 6  # 3 * 2 ordered pairs, no self-pairs
        assert all(src != dst for (src, dst), _w in weighted)
        assert sum(w for _p, w in weighted) == pytest.approx(1.0)
        assert len({w for _p, w in weighted}) == 1

    def test_hotspot_concentrates_mass_on_one_pair(self):
        weighted = pair_weights(4, "hotspot", SeededRandom(7), hotspot_fraction=0.5)
        weights = sorted(w for _p, w in weighted)
        assert sum(weights) == pytest.approx(1.0)
        background = (1.0 - 0.5) / 12
        assert weights[-1] == pytest.approx(0.5 + background)
        assert all(w == pytest.approx(background) for w in weights[:-1])

    def test_hotspot_victim_is_seeded(self):
        a = pair_weights(6, "hotspot", SeededRandom(3))
        b = pair_weights(6, "hotspot", SeededRandom(3))
        assert a == b

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            pair_weights(1, "permutation", SeededRandom(1))
        with pytest.raises(ValueError):
            pair_weights(4, "gravity", SeededRandom(1))
        with pytest.raises(ValueError):
            pair_weights(4, "hotspot", SeededRandom(1), hotspot_fraction=1.5)


class TestFabricRate:
    def test_opera_rate_is_duty_cycled(self):
        config = OperaConfig()
        expected = config.link_rate_bps * config.slot_ns / (
            config.slot_ns + config.night_ns
        )
        assert average_fabric_rate_bps(config) == pytest.approx(expected)

    def test_rdcn_rate_is_schedule_weighted(self):
        config = ExperimentConfig(variant="cubic").rdcn
        active = sum(
            config.day_ns * config.tdn_rate_bps(t) for t in config.schedule_pattern
        )
        assert average_fabric_rate_bps(config) == pytest.approx(active / config.week_ns)

    def test_unknown_config_type_rejected(self):
        with pytest.raises(TypeError):
            average_fabric_rate_bps(object())


class TestSizeBins:
    def test_bin_edges(self):
        assert size_bin(1) == "small"
        assert size_bin(100_000) == "small"
        assert size_bin(100_001) == "medium"
        assert size_bin(10_000_000) == "medium"
        assert size_bin(10_000_001) == "large"


class TestTraceIO:
    def flows(self):
        return [
            TraceFlow(start_ns=0, src="r0h0", dst="r1h1", size_bytes=20_000),
            TraceFlow(start_ns=500, src="r1h0", dst="r0h0", size_bytes=1_000),
            TraceFlow(start_ns=500, src="r0h1", dst="r1h0", size_bytes=99),
        ]

    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.csv"
        write_trace(path, self.flows())
        loaded, skipped = load_trace(path)
        assert skipped == 0
        assert loaded == sorted(
            self.flows(), key=lambda f: (f.start_ns, f.src, f.dst, f.size_bytes)
        )

    def test_headerless_round_trip(self, tmp_path):
        path = tmp_path / "trace.csv"
        write_trace(path, self.flows(), header=False)
        assert path.read_text().splitlines()[0] != ",".join(TRACE_COLUMNS)
        loaded, _skipped = load_trace(path)
        assert len(loaded) == 3

    def test_strict_mode_raises_with_line_number(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("start_ns,src,dst,size_bytes\n0,r0h0,r1h0,5000\nnope\n")
        with pytest.raises(ValueError, match="line 3"):
            load_trace(path, strict=True)

    def test_lenient_mode_counts_skipped_rows(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "0,r0h0,r1h0,5000\n"
            "bad,row\n"               # wrong column count
            "-5,r0h0,r1h0,100\n"      # negative start
            "10,r0h0,r0h0,100\n"      # src == dst
            "10,host3,r1h0,100\n"     # malformed address
            "20,r1h0,r0h1,7000\n"
        )
        loaded, skipped = load_trace(path, strict=False)
        assert [f.size_bytes for f in loaded] == [5000, 7000]
        assert skipped == 4

    def test_parse_host_address(self):
        assert parse_host_address("r3h12") == (3, 12)
        for bad in ("h3r1", "r1", "r1h", "r-1h0", "server9"):
            with pytest.raises(ValueError):
                parse_host_address(bad)


class TestCompletionStats:
    def test_truncation_and_completion_rate(self):
        stats = CompletionStats(capacity_bps=1e9)
        for _ in range(5):
            stats.on_start(1_000)
        stats.on_complete(0, 1_000, 50_000)
        stats.on_complete(0, 1_000, 70_000)
        stats.finalize()
        assert stats.started == 5
        assert stats.completed == 2
        assert stats.truncated_flows == 3
        assert stats.completion_rate() == pytest.approx(0.4)

    def test_slowdown_is_fct_over_ideal(self):
        stats = CompletionStats(capacity_bps=1e9)
        stats.on_start(125_000)  # ideal: 1 ms at 1 Gbps
        slowdown = stats.on_complete(0, 125_000, 3_000_000)
        assert slowdown == pytest.approx(3.0)
        assert stats.slowdown_sketch.quantile(0.5) == pytest.approx(3.0, rel=0.05)

    def test_reservoir_is_capped_and_unbiased_enough(self):
        cap = 64
        stats = CompletionStats(
            capacity_bps=1e9, record_cap=cap, rng=SeededRandom(9).fork("reservoir")
        )
        n = 5_000
        for i in range(n):
            stats.on_start(1_000)
            stats.on_complete(i, 1_000, i + 10)
        assert len(stats.records) == cap
        # Unbiased sampling: the kept start times should span the whole
        # stream, not cluster at either end.
        starts = sorted(r.start_ns for r in stats.records)
        assert starts[0] < n * 0.25
        assert starts[-1] > n * 0.75
        mean_start = sum(starts) / cap
        assert n * 0.3 < mean_start < n * 0.7

    def test_record_cap_needs_rng(self):
        with pytest.raises(ValueError):
            CompletionStats(capacity_bps=1e9, record_cap=4)
        with pytest.raises(ValueError):
            CompletionStats(capacity_bps=1e9, record_cap=-1)


class TestEngineRuns:
    def run_once(self, **overrides):
        result = run_experiment(engine_config(**overrides))
        assert result.failure is None
        return result

    def test_empirical_run_produces_summary(self):
        result = self.run_once(workload=dict(max_flows=120))
        summary = result.workload_summary
        assert summary["started"] == 120
        assert summary["completed"] > 100
        assert summary["truncated_flows"] == summary["started"] - summary["completed"]
        assert result.truncated_flows == summary["truncated_flows"]
        assert summary["slowdown"]["p50"] is not None
        assert summary["fct_us"]["p50"] is not None
        assert set(summary["slowdown_by_bin"]) == {"small", "medium", "large"}
        assert "fct_us" in result.sketches and "slowdown" in result.sketches

    def test_seeded_determinism(self):
        first = self.run_once(workload=dict(max_flows=100, matrix="all-to-all"))
        second = self.run_once(workload=dict(max_flows=100, matrix="all-to-all"))
        # Wall-clock fields are host-dependent by design; everything
        # else must be byte-identical.
        encode = lambda r: json.dumps(
            strip_wall_fields(r.workload_summary), sort_keys=True
        )
        assert encode(first) == encode(second)

    def test_summary_reports_wall_clock_flow_rate(self):
        result = self.run_once(workload=dict(max_flows=50))
        summary = result.workload_summary
        for key in WALL_SUMMARY_FIELDS:
            assert key in summary
        assert summary["engine_wall_s"] > 0
        assert summary["engine_flows_per_sec"] == pytest.approx(
            summary["completed"] / summary["engine_wall_s"]
        )
        assert not set(strip_wall_fields(summary)) & set(WALL_SUMMARY_FIELDS)

    def test_reservoir_never_perturbs_traffic(self):
        # Enabling per-flow records must not change a single packet:
        # the reservoir draws from its own RNG substream.
        bare = self.run_once(workload=dict(max_flows=100))
        recorded = self.run_once(workload=dict(max_flows=100, record_cap=32))
        assert json.dumps(
            strip_wall_fields(bare.workload_summary), sort_keys=True
        ) == json.dumps(
            strip_wall_fields(recorded.workload_summary), sort_keys=True
        )

    def test_matrices_and_variants_run(self):
        for matrix in ("permutation", "all-to-all", "hotspot"):
            result = self.run_once(
                variant="tdtcp", workload=dict(max_flows=40, matrix=matrix)
            )
            assert result.workload_summary["completed"] > 0

    def test_trace_replay_round_trip(self, tmp_path):
        path = tmp_path / "trace.csv"
        write_trace(path, [
            TraceFlow(start_ns=i * 50_000, src="r0h%d" % (i % 2),
                      dst="r1h%d" % (i % 2), size_bytes=8_000 + i)
            for i in range(20)
        ])
        result = self.run_once(workload=dict(kind="trace", trace_path=str(path)))
        summary = result.workload_summary
        assert summary["started"] == 20
        assert summary["completed"] == 20
        assert summary["trace_rows_skipped"] == 0
        assert summary["bytes_offered"] == sum(8_000 + i for i in range(20))

    def test_strict_trace_failure_is_a_run_failure_not_a_crash(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("0,r0h0,r1h0,9000\njunk line\n")
        result = run_experiment(
            engine_config(workload=dict(kind="trace", trace_path=str(path)))
        )
        assert result.failure is not None
        assert result.failure.error_type == "ValueError"
        assert "line 2" in result.failure.error_message

    def test_lenient_trace_surfaces_skipped_rows(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("0,r0h0,r1h0,9000\njunk line\n100000,r1h1,r0h1,9000\n")
        result = self.run_once(
            workload=dict(kind="trace", trace_path=str(path), strict_trace=False)
        )
        assert result.workload_summary["trace_rows_skipped"] == 1
        assert result.workload_summary["started"] == 2

    def test_achieved_load_calibration(self):
        # Acceptance bar: achieved within 5% of requested. The fixed
        # 10 KB CDF keeps the size distribution noise out of the check.
        result = self.run_once(weeks=20, workload=dict(load=0.3))
        summary = result.workload_summary
        assert summary["started"] > 1_000
        achieved = summary["achieved_load"]
        assert abs(achieved - 0.3) / 0.3 < 0.05

    def test_result_round_trip_preserves_workload_summary(self):
        result = self.run_once(workload=dict(max_flows=30))
        restored = ExperimentResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert restored.workload_summary == result.workload_summary
        assert restored.truncated_flows == result.truncated_flows


class TestEngineOnOpera:
    def test_engine_drives_n_rack_opera_fabric(self):
        from repro.rdcn.opera import build_opera_testbed

        testbed = build_opera_testbed(OperaConfig(n_racks=4, n_hosts_per_rack=2))
        engine = WorkloadEngine(
            testbed, SeededRandom(11), load=0.2, cdf=FIXED_10KB,
            matrix="all-to-all", max_flows=40,
        )
        engine.start()
        testbed.start()
        testbed.sim.run(until=5_000_000)
        stats = engine.finish()
        assert stats.started == 40
        assert stats.completed > 20
        assert engine.n_racks == 4


class TestExecutorDeterminism:
    def summaries(self, jobs, tmp_path, tag):
        configs = [
            engine_config(seed=seed, workload=dict(max_flows=40))
            for seed in (61, 62)
        ]
        campaign = CampaignLog(tmp_path / f"{tag}.jsonl")
        executor = ExperimentExecutor(jobs=jobs, campaign=campaign)
        results = executor.run_batch(configs, labels=[f"s{c.seed}" for c in configs])
        campaign.close()
        assert all(r.failure is None for r in results)
        return json.dumps(campaign_summary(campaign.records), sort_keys=True)

    def test_campaign_summary_identical_jobs_1_vs_2(self, tmp_path):
        sequential = self.summaries(1, tmp_path, "seq")
        pooled = self.summaries(2, tmp_path, "pool")
        assert sequential == pooled


class TestWorkloadConfig:
    def test_schema_version_bumped_for_workload(self):
        assert CONFIG_SCHEMA_VERSION >= 3

    def test_round_trip(self):
        config = engine_config(workload=dict(matrix="hotspot", record_cap=16))
        restored = ExperimentConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert restored == config
        assert restored.cache_key() == config.cache_key()

    def test_cache_key_tracks_workload_semantics(self):
        base = engine_config()
        assert engine_config(workload=dict(load=0.5)).cache_key() != base.cache_key()
        assert engine_config(workload=dict(matrix="all-to-all")).cache_key() != base.cache_key()
        assert engine_config().cache_key() == base.cache_key()

    def test_trace_path_is_non_semantic_content_hash_is(self, tmp_path):
        a_path = tmp_path / "a.csv"
        b_path = tmp_path / "b.csv"
        write_trace(a_path, [TraceFlow(0, "r0h0", "r1h0", 5_000)])
        write_trace(b_path, [TraceFlow(0, "r0h0", "r1h0", 5_000)])
        different = tmp_path / "c.csv"
        write_trace(different, [TraceFlow(0, "r0h0", "r1h0", 6_000)])
        key = lambda p: engine_config(
            workload=dict(kind="trace", trace_path=str(p))
        ).cache_key()
        assert key(a_path) == key(b_path)  # same bytes, different path
        assert key(a_path) != key(different)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(load=0.0)
        with pytest.raises(ValueError):
            WorkloadConfig(load=1.2)
        with pytest.raises(ValueError):
            WorkloadConfig(matrix="gravity")
        with pytest.raises(ValueError):
            WorkloadConfig(kind="trace")  # no trace_path
        with pytest.raises(ValueError):
            WorkloadConfig(cdf="custom")  # no points
        with pytest.raises(ValueError):
            WorkloadConfig(record_cap=-1)
        WorkloadConfig(load=1.0)  # the boundary is legal now

    def test_mptcp_rejected_with_workload(self):
        with pytest.raises(ValueError, match="mptcp"):
            engine_config(variant="mptcp")


class TestLoadSweep:
    def test_sweep_renders_and_reports_points(self):
        result = load_sweep(
            loads=(0.2, 0.4), variants=("cubic",),
            cdf="custom", custom_cdf=FIXED_10KB,
            weeks=8, warmup_weeks=0, seed=5, max_flows=60,
        )
        assert result.ok
        assert len(result.points) == 2
        for point in result.points:
            assert point.started == 60
            assert point.completed > 40
            assert point.percentile("slowdown", "p50") is not None
            assert "fct_us" in point.sketches
        rendered = result.render()
        assert "FAILED" not in rendered
        assert "0.20" in rendered and "0.40" in rendered

    def test_sweep_surfaces_failures_without_faking_numbers(self):
        # An impossible watchdog bound makes every run fail fast.
        result = load_sweep(
            loads=(0.2,), variants=("cubic",),
            cdf="custom", custom_cdf=FIXED_10KB,
            weeks=8, warmup_weeks=0, seed=5, max_flows=10,
            watchdog_max_events=1,
        )
        assert not result.ok
        point = result.points[0]
        assert point.failure is not None
        assert point.summary is None
        assert "FAILED" in result.render()
