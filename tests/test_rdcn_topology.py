"""Topology builder: wiring, RTT calibration, schedule gating."""

import pytest

from repro.net.packet import Packet
from repro.net.queues import ECNMarkingQueue
from repro.rdcn.config import NotifierConfig, RDCNConfig
from repro.rdcn.topology import build_two_rack_testbed
from repro.sim import Simulator
from repro.units import gbps, usec


def build(n_hosts=2, **kwargs):
    cfg = RDCNConfig(n_hosts_per_rack=n_hosts, **kwargs)
    return build_two_rack_testbed(cfg)


class TestConstruction:
    def test_host_counts(self):
        tb = build(n_hosts=3)
        assert len(tb.hosts[0]) == 3
        assert len(tb.hosts[1]) == 3
        assert tb.host(0, 2).address == "r0h2"

    def test_uplinks_per_direction(self):
        tb = build()
        assert set(tb.uplinks) == {0, 1}
        assert tb.uplinks[0] is not tb.uplinks[1]

    def test_ecn_queues_when_requested(self):
        cfg = RDCNConfig(n_hosts_per_rack=2)
        tb = build_two_rack_testbed(cfg, ecn=True)
        assert isinstance(tb.uplinks[0].queue, ECNMarkingQueue)

    def test_plain_queues_by_default(self):
        tb = build()
        assert not isinstance(tb.uplinks[0].queue, ECNMarkingQueue)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RDCNConfig(n_hosts_per_rack=0)
        with pytest.raises(ValueError):
            RDCNConfig(schedule_pattern=())
        with pytest.raises(ValueError):
            RDCNConfig(voq_capacity=0)
        with pytest.raises(ValueError):
            NotifierConfig(night_policy="bogus")

    def test_derived_properties(self):
        cfg = RDCNConfig()
        assert cfg.n_tdns == 2
        assert cfg.week_ns == 7 * (cfg.day_ns + cfg.night_ns)
        assert cfg.tdn_rate_bps(0) == cfg.packet_rate_bps
        assert cfg.tdn_rate_bps(1) == cfg.optical_rate_bps


class TestDataPath:
    def _one_packet_rtt(self, tb, tdn):
        """Send one packet r0h0 -> r1h0 and an immediate 'ack' back;
        returns (data_arrival, ack_arrival)."""
        sim = tb.sim
        for uplink in tb.uplinks.values():
            uplink.set_active(tdn)
        src = tb.host(0, 0)
        dst = tb.host(1, 0)
        times = {}

        def on_data(pkt):
            times["data"] = sim.now
            dst.send(Packet(dst.address, src.address, 64))

        def on_ack(pkt):
            times["ack"] = sim.now

        # Bypass TCP: watch raw deliveries.
        dst.deliver = lambda p: on_data(p)
        src.deliver = lambda p: on_ack(p)
        src.send(Packet(src.address, dst.address, 1500))
        sim.run(until=usec(1000))
        return times

    def test_packet_rtt_near_100us(self):
        tb = build()
        times = self._one_packet_rtt(tb, tdn=0)
        assert times["ack"] == pytest.approx(usec(100), rel=0.15)

    def test_optical_rtt_near_40us(self):
        tb = build()
        times = self._one_packet_rtt(tb, tdn=1)
        assert times["ack"] == pytest.approx(usec(40), rel=0.2)

    def test_cross_rack_delivery_through_schedule(self):
        tb = build()
        got = []
        tb.host(1, 0).subscribe_tdn_changes(lambda n: None)
        original = tb.host(1, 0).deliver

        def spy(pkt):
            got.append(pkt)
            original(pkt)

        tb.host(1, 0).deliver = spy
        tb.start()
        tb.host(0, 0).send(Packet("r0h0", "r1h0", 1500))
        tb.sim.run(until=usec(300))
        data = [p for p in got if p.size == 1500]
        assert len(data) == 1
        assert data[0].network_id == 0  # first day is a packet day

    def test_rack_local_traffic_stays_local(self):
        tb = build(n_hosts=2)
        tb.start()
        got = []
        original = tb.host(0, 1).deliver
        tb.host(0, 1).deliver = lambda p: (got.append(p), original(p))
        tb.host(0, 0).send(Packet("r0h0", "r0h1", 1500))
        tb.sim.run(until=usec(50))
        data = [p for p in got if p.size == 1500]
        assert len(data) == 1
        assert data[0].network_id is None  # never crossed the fabric

    def test_schedule_gates_fabric(self):
        tb = build()
        tb.start()
        # Advance into the first night and inject a packet: it must
        # wait for the next day.
        night_start = tb.config.day_ns
        tb.sim.run(until=night_start + usec(1))
        got = []
        original = tb.host(1, 0).deliver
        tb.host(1, 0).deliver = lambda p: (
            got.append(tb.sim.now) if p.size == 1500 else None,
            original(p),
        )
        tb.host(0, 0).send(Packet("r0h0", "r1h0", 1500))
        tb.sim.run(until=night_start + usec(5))
        assert got == []  # still night
        tb.sim.run(until=night_start + tb.config.night_ns + usec(60))
        assert len(got) == 1
