"""Parallel experiment executor: serialization round trips, cache
behavior, retry policy, parallel-vs-sequential equivalence, and the
failure-surfacing regressions (silent sweeps, crash-path telemetry,
mid-run collector attach, report resampling)."""

import json
import math

import numpy as np
import pytest

from repro.experiments import executor as executor_mod
from repro.experiments.config import ExperimentConfig
from repro.experiments.executor import (
    BatchStats,
    ExperimentExecutor,
    ResultCache,
)
from repro.experiments.figures import FigureData, fig2
from repro.experiments.report import render_series_table
from repro.experiments.runner import ExperimentResult, RunFailure, run_experiment
from repro.experiments.sweeps import day_length_sweep
from repro.faults.plan import FaultPlan, FaultSpec
from repro.metrics.collectors import QueueOccupancyCollector
from repro.net.queues import DropTailQueue
from repro.obs.telemetry import ObsConfig
from repro.rdcn.config import RDCNConfig
from repro.sim.simulator import Simulator

SMALL = dict(weeks=4, warmup_weeks=1, n_flows=2)


def small_config(**overrides):
    kwargs = dict(variant="cubic", weeks=4, warmup_weeks=1, n_flows=2, seed=1)
    kwargs.update(overrides)
    return ExperimentConfig(**kwargs)


def flap_plan():
    return FaultPlan(
        specs=[FaultSpec(kind="link_flap", target="uplink-*", at_ns=1_000,
                         params={"down_ns": 500.0})],
        name="flap",
    )


def ok_result_dict(config: ExperimentConfig) -> dict:
    result = ExperimentResult(config=config, duration_ns=config.duration_ns)
    result.aggregate_delivered = 123
    return result.to_dict()


def failed_result_dict(config: ExperimentConfig) -> dict:
    result = ExperimentResult(config=config, duration_ns=config.duration_ns)
    result.failure = RunFailure("Boom", "synthetic crash", config.seed, None, None)
    return result.to_dict()


class TestConfigSerialization:
    def test_round_trip_with_fault_plan(self):
        config = small_config(variant="tdtcp", fault_plan=flap_plan(),
                              background_load=0.1, audit="warn")
        blob = json.dumps(config.to_dict(), sort_keys=True)
        restored = ExperimentConfig.from_dict(json.loads(blob))
        assert restored == config
        assert restored.cache_key() == config.cache_key()
        assert restored.fault_plan == config.fault_plan

    def test_round_trip_with_obs(self):
        config = small_config(obs=ObsConfig(trace_dir="out", label="x"))
        restored = ExperimentConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert restored == config

    def test_cache_key_ignores_non_semantic_fields(self):
        base = small_config()
        assert small_config(bundle_dir="elsewhere").cache_key() == base.cache_key()
        assert small_config(obs=ObsConfig(trace_dir="out")).cache_key() == base.cache_key()

    def test_cache_key_tracks_semantic_fields(self):
        base = small_config()
        assert small_config(seed=2).cache_key() != base.cache_key()
        assert small_config(variant="tdtcp").cache_key() != base.cache_key()
        assert small_config(fault_plan=flap_plan()).cache_key() != base.cache_key()
        assert small_config(weeks=5).cache_key() != base.cache_key()

    def test_cache_key_stable_across_processes(self):
        # sha256 of canonical JSON — no PYTHONHASHSEED dependence.
        config = small_config(fault_plan=flap_plan())
        rebuilt = ExperimentConfig.from_dict(config.to_dict())
        assert rebuilt.cache_key() == config.cache_key()
        assert len(config.cache_key()) == 64

    def test_from_dict_rejects_unknown_fields(self):
        data = small_config().to_dict()
        data["not_a_field"] = 1
        with pytest.raises(ValueError, match="not_a_field"):
            ExperimentConfig.from_dict(data)


class TestResultSerialization:
    def test_round_trip_preserves_everything(self):
        result = run_experiment(small_config())
        restored = ExperimentResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert restored.to_dict() == result.to_dict()
        assert restored.seq_samples == result.seq_samples
        assert isinstance(restored.seq_samples[0], tuple)
        assert restored.steady_state_throughput_gbps() == pytest.approx(
            result.steady_state_throughput_gbps()
        )

    def test_failure_round_trip(self):
        config = small_config()
        result = ExperimentResult(config=config, duration_ns=config.duration_ns)
        result.failure = RunFailure("WatchdogExceeded", "budget", 1, None, "b/path")
        restored = ExperimentResult.from_dict(result.to_dict())
        assert not restored.ok
        assert restored.failure == result.failure


class TestCache:
    def test_warm_cache_short_circuits_execution(self, tmp_path, monkeypatch):
        config = small_config()
        first = ExperimentExecutor(cache_dir=str(tmp_path))
        [result] = first.run_batch([config])
        assert result.ok
        assert first.last_batch.executed == 1
        assert first.last_batch.cache_misses == 1

        def boom(_config):
            raise AssertionError("cache hit must not re-execute the simulation")

        monkeypatch.setattr(executor_mod, "run_experiment", boom)
        second = ExperimentExecutor(cache_dir=str(tmp_path))
        [cached] = second.run_batch([config])
        assert second.last_batch.cache_hits == 1
        assert second.last_batch.executed == 0
        assert second.metrics.get("executor_cache_hits_total").total() == 1
        assert cached.to_dict() == result.to_dict()

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        config = small_config()
        cache = ResultCache(str(tmp_path))
        key = config.cache_key()
        cache.path_for(key).parent.mkdir(parents=True)
        cache.path_for(key).write_text("{not json")
        assert cache.get(key) is None

    def test_failed_results_are_not_cached(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # repro bundles land under cwd
        config = small_config(watchdog_max_events=500)
        for _round in range(2):
            ex = ExperimentExecutor(cache_dir=str(tmp_path / "cache"), retries=0)
            [result] = ex.run_batch([config])
            assert not result.ok
            assert ex.last_batch.cache_hits == 0
            assert ex.last_batch.executed == 1

    def test_active_obs_bypasses_cache(self, tmp_path):
        config = small_config(obs=ObsConfig(trace_dir=str(tmp_path / "trace"),
                                            chrome_trace=False, csv=False))
        ex = ExperimentExecutor(cache_dir=str(tmp_path / "cache"))
        ex.run_batch([config])
        ex2 = ExperimentExecutor(cache_dir=str(tmp_path / "cache"))
        [again] = ex2.run_batch([config])
        assert ex2.last_batch.cache_hits == 0
        assert ex2.last_batch.executed == 1
        assert again.artifacts  # telemetry really ran

    def test_use_cache_false_disables_cache(self, tmp_path):
        config = small_config()
        ex = ExperimentExecutor(cache_dir=str(tmp_path), use_cache=False)
        ex.run_batch([config])
        ex.run_batch([config])
        assert ex.last_batch.cache_hits == 0
        assert not list(tmp_path.rglob("*.json"))


class TestRetryPolicy:
    def test_retry_then_succeed(self, monkeypatch):
        calls = []

        def flaky(payload):
            calls.append(1)
            config = ExperimentConfig.from_dict(payload)
            if len(calls) == 1:
                return failed_result_dict(config)
            return ok_result_dict(config)

        monkeypatch.setattr(executor_mod, "execute_config_dict", flaky)
        ex = ExperimentExecutor(retries=1)
        [result] = ex.run_batch([small_config()])
        assert result.ok
        assert len(calls) == 2
        assert ex.last_batch.retries == 1
        assert ex.last_batch.failures == 0
        assert ex.metrics.get("executor_retries_total").total() == 1
        assert ex.metrics.get("executor_runs_total").value(outcome="ok") == 1

    def test_retry_exhausted_surfaces_failure(self, monkeypatch):
        calls = []

        def always_fails(payload):
            calls.append(1)
            return failed_result_dict(ExperimentConfig.from_dict(payload))

        monkeypatch.setattr(executor_mod, "execute_config_dict", always_fails)
        ex = ExperimentExecutor(retries=2)
        [result] = ex.run_batch([small_config()])
        assert not result.ok
        assert result.failure.error_type == "Boom"
        assert len(calls) == 3  # initial + 2 retries
        assert ex.last_batch.retries == 2
        assert ex.last_batch.failures == 1
        assert ex.metrics.get("executor_runs_total").value(outcome="failed") == 1

    def test_transport_crash_becomes_structured_failure(self, monkeypatch):
        def explodes(payload):
            raise OSError("worker transport broke")

        monkeypatch.setattr(executor_mod, "execute_config_dict", explodes)
        ex = ExperimentExecutor(retries=0)
        [result] = ex.run_batch([small_config()])
        assert not result.ok
        assert result.failure.error_type == "OSError"


class TestParallelEquivalence:
    def test_fig2_jobs2_value_identical_to_sequential(self):
        sequential = fig2(**SMALL)
        parallel = fig2(**SMALL, executor=ExperimentExecutor(jobs=2))
        assert parallel.throughputs_gbps == sequential.throughputs_gbps
        assert set(parallel.seq_curves) == set(sequential.seq_curves)
        for variant in sequential.seq_curves:
            for attr in ("seq_curves", "voq_curves"):
                seq_t, seq_v = getattr(sequential, attr)[variant]
                par_t, par_v = getattr(parallel, attr)[variant]
                assert np.array_equal(seq_t, par_t), f"{attr}/{variant} times differ"
                assert np.array_equal(seq_v, par_v), f"{attr}/{variant} values differ"
        assert np.array_equal(parallel.optimal[1], sequential.optimal[1])
        assert np.array_equal(parallel.packet_only[1], sequential.packet_only[1])

    def test_batch_results_in_input_order(self, monkeypatch):
        # Labels come back positionally even though the pool finishes
        # out of order; with the inline path this checks the assembly
        # indexing directly.
        seeds = [5, 3, 9]
        ex = ExperimentExecutor()
        results = ex.run_batch([small_config(seed=s) for s in seeds])
        assert [r.config.seed for r in results] == seeds


class TestFigureDegradation:
    def test_failed_variant_does_not_abort_figure(self, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        real = executor_mod.run_experiment

        def selective(config):
            if config.variant == "mptcp":
                result = ExperimentResult(config=config, duration_ns=config.duration_ns)
                result.failure = RunFailure("Boom", "mptcp down", config.seed, None, None)
                return result
            return real(config)

        monkeypatch.setattr(executor_mod, "run_experiment", selective)
        data = fig2(**SMALL, executor=ExperimentExecutor(retries=0))
        assert not data.ok
        assert set(data.failures) == {"mptcp"}
        assert data.failures["mptcp"].error_type == "Boom"
        assert "cubic" in data.throughputs_gbps
        assert "mptcp" not in data.throughputs_gbps


class TestSweepFailureSurfacing:
    def test_crashed_run_is_a_failure_not_zero_throughput(self, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)  # repro bundles land under cwd
        result = day_length_sweep(
            day_us_values=(180,), variants=("cubic",),
            weeks=4, warmup_weeks=1, n_flows=2,
            watchdog_max_events=500,
            executor=ExperimentExecutor(retries=0),
        )
        assert not result.ok
        [point] = result.points
        assert point.failure is not None
        assert math.isnan(point.throughput_gbps)
        assert "cubic" not in result.by_label()["180us"]
        rendered = result.render()
        assert "FAILED" in rendered
        assert "WatchdogExceeded" in rendered

    def test_clean_sweep_unchanged(self):
        result = day_length_sweep(
            day_us_values=(180,), variants=("cubic",),
            weeks=4, warmup_weeks=1, n_flows=2,
        )
        assert result.ok
        assert result.points[0].throughput_gbps > 0
        assert "FAILED" not in result.render()


class TestRunnerCrashTelemetry:
    def test_crash_path_populates_profile(self, tmp_path):
        config = small_config(
            obs=ObsConfig(profile=True, metrics_dir=str(tmp_path / "m")),
            watchdog_max_events=500,
            bundle_dir=str(tmp_path / "bundles"),
        )
        result = run_experiment(config)
        assert not result.ok
        assert result.profile_report is not None
        assert result.events_per_second is not None
        assert result.artifacts


class TestCollectorMidRunAttach:
    def test_initial_sample_uses_sim_now(self):
        sim = Simulator()
        sim.now = 777
        queue = DropTailQueue(4)
        collector = QueueOccupancyCollector(sim, queue)
        assert collector.samples[0] == (777, 0)


class TestSeriesTableResampling:
    def test_columns_resampled_onto_base_grid(self):
        data = FigureData(name="x", rdcn=RDCNConfig(), weeks_plotted=1)
        fine = (np.array([0, 1_000, 2_000, 3_000]), np.array([0.0, 1.0, 2.0, 3.0]))
        coarse = (np.array([0, 3_000]), np.array([0.0, 30.0]))
        text = render_series_table(
            data, {"a_fine": fine, "coarse": coarse}, "v", points=4
        )
        lines = text.splitlines()
        rows = [[float(cell) for cell in line.split()] for line in lines[2:]]
        # Base grid = the first (sorted) column's sampled times, in us;
        # the coarse column holds its previous value until its own next
        # sample instead of being padded by row index.
        assert [r[0] for r in rows] == [0.0, 1.0, 2.0, 3.0]
        assert [r[1] for r in rows] == [0.0, 1.0, 2.0, 3.0]   # a_fine (base)
        assert [r[2] for r in rows] == [0.0, 0.0, 0.0, 30.0]  # coarse, resampled

    def test_empty_base_column_falls_back(self):
        data = FigureData(name="x", rdcn=RDCNConfig(), weeks_plotted=1)
        empty = (np.array([]), np.array([]))
        series = (np.array([0, 100]), np.array([1.0, 2.0]))
        text = render_series_table(data, {"a": empty, "b": series}, "v", points=2)
        assert "2.00" in text  # grid came from the non-empty column


class TestBatchStats:
    def test_render(self):
        stats = BatchStats(total=4, executed=2, cache_hits=2, retries=1, failures=1)
        text = stats.render()
        assert "4 runs" in text and "2 cache hits" in text and "1 retries" in text
