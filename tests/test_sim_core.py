"""Simulator core: event queue, clock, timers, RNG, traces."""

import pytest

from repro.sim import ListTraceSink, NullTraceSink, SeededRandom, Simulator, Timer
from repro.sim.events import EventQueue


class TestEventQueue:
    def test_fifo_order_same_time(self):
        q = EventQueue()
        order = []
        q.push(10, order.append, ("a",))
        q.push(10, order.append, ("b",))
        q.push(10, order.append, ("c",))
        while True:
            event = q.pop()
            if event is None:
                break
            event.fn(*event.args)
        assert order == ["a", "b", "c"]

    def test_time_order(self):
        q = EventQueue()
        q.push(30, lambda: None)
        q.push(10, lambda: None)
        q.push(20, lambda: None)
        times = []
        while True:
            e = q.pop()
            if e is None:
                break
            times.append(e.time)
        assert times == [10, 20, 30]

    def test_cancelled_events_skipped(self):
        q = EventQueue()
        e1 = q.push(10, lambda: None)
        q.push(20, lambda: None)
        e1.cancel()
        assert len(q) == 1
        popped = q.pop()
        assert popped is not None and popped.time == 20

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        e1 = q.push(10, lambda: None)
        q.push(20, lambda: None)
        e1.cancel()
        assert q.peek_time() == 20

    def test_direct_cancel_keeps_live_count_exact(self):
        # Regression: Event.cancel() used to need a separate
        # note_cancelled() bookkeeping call on the queue; forgetting it
        # desynced len(q) / Simulator.pending_events.
        q = EventQueue()
        e1 = q.push(10, lambda: None)
        e2 = q.push(20, lambda: None)
        e1.cancel()
        e1.cancel()  # idempotent: must not double-decrement
        assert len(q) == 1
        e2.cancel()
        assert len(q) == 0
        assert q.pop() is None

    def test_simulator_pending_events_after_direct_cancel(self):
        sim = Simulator()
        event = sim.schedule(100, lambda: None)
        sim.schedule(200, lambda: None)
        event.cancel()  # bypassing sim.cancel() must stay exact
        assert sim.pending_events == 1
        sim.run()
        assert sim.processed_events == 1

    def test_len_counts_live(self):
        q = EventQueue()
        q.push(1, lambda: None)
        q.push(2, lambda: None)
        assert len(q) == 2
        q.pop()
        assert len(q) == 1

    def test_clear_cancels_held_events(self):
        # Regression: clear() used to leave held events with
        # cancelled=False, so a later event.cancel() on a
        # cleared-then-refilled queue decremented _live of the wrong
        # queue generation.
        q = EventQueue()
        stale = q.push(10, lambda: None)
        q.clear()
        assert len(q) == 0
        fresh = q.push(20, lambda: None)
        stale.cancel()  # must be a no-op against the new generation
        assert stale.cancelled
        assert len(q) == 1
        assert q.pop() is fresh
        assert len(q) == 0


class TestSimulator:
    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(500, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [500]
        assert sim.now == 500

    def test_run_until_advances_clock(self):
        sim = Simulator()
        sim.run(until=1_000)
        assert sim.now == 1_000

    def test_run_until_leaves_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(2_000, lambda: fired.append(True))
        sim.run(until=1_000)
        assert not fired
        assert sim.pending_events == 1
        sim.run(until=3_000)
        assert fired

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)

    def test_at_in_past_rejected(self):
        sim = Simulator()
        sim.run(until=100)
        with pytest.raises(ValueError):
            sim.at(50, lambda: None)

    def test_cancel(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(10, lambda: fired.append(True))
        sim.cancel(event)
        sim.run()
        assert not fired

    def test_stop_inside_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, lambda: (fired.append(1), sim.stop()))
        sim.schedule(20, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(i + 1, lambda i=i: fired.append(i))
        processed = sim.run(max_events=3)
        assert processed == 3
        assert fired == [0, 1, 2]

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.schedule(5, inner)

        def inner():
            seen.append(("inner", sim.now))

        sim.schedule(10, outer)
        sim.run()
        assert seen == [("outer", 10), ("inner", 15)]

    def test_processed_events_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(i, lambda: None)
        sim.run()
        assert sim.processed_events == 4


class TestTimer:
    def test_fires_once(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(100)
        sim.run()
        assert fired == [100]
        assert not timer.armed

    def test_restart_moves_deadline(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(100)
        timer.start(200)
        sim.run()
        assert fired == [200]

    def test_cancel(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(True))
        timer.start(100)
        timer.cancel()
        sim.run()
        assert not fired

    def test_deadline_property(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        assert timer.deadline is None
        timer.start(42)
        assert timer.deadline == 42

    def test_start_at_absolute(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start_at(77)
        sim.run()
        assert fired == [77]

    def test_args_passed(self):
        sim = Simulator()
        got = []
        timer = Timer(sim, lambda x, y: got.append((x, y)))
        timer.start(10, "a", 3)
        sim.run()
        assert got == [("a", 3)]


@pytest.mark.parametrize("mode", ["start", "start_at"])
class TestTimerArmParity:
    """``Timer.start`` and ``Timer.start_at`` share one ``_arm`` body;
    this parameterized suite pins that the relative and absolute
    spellings behave identically — fast path, reschedule, cancel, and
    validation — so the two entry points can never drift apart."""

    @staticmethod
    def _arm(timer, sim, at, mode, *args):
        if mode == "start":
            timer.start(at - sim.now, *args)
        else:
            timer.start_at(at, *args)

    def test_fires_at_deadline(self, mode):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        self._arm(timer, sim, 100, mode)
        sim.run()
        assert fired == [100]
        assert not timer.armed

    def test_extend_deadline_fast_path_keeps_event(self, mode):
        # Extending the deadline must NOT consume a new event: the
        # armed event fires first and _fire re-arms for the remainder.
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        self._arm(timer, sim, 100, mode)
        event = timer._event
        seq_after_arm = sim._queue._seq
        self._arm(timer, sim, 250, mode)
        assert timer._event is event  # same scheduled event
        assert sim._queue._seq == seq_after_arm  # no new event consumed
        assert timer.deadline == 250
        sim.run()
        assert fired == [250]

    def test_move_deadline_earlier_reschedules(self, mode):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        self._arm(timer, sim, 200, mode)
        first_event = timer._event
        self._arm(timer, sim, 100, mode)
        assert first_event.cancelled  # old event dead, exactly one fire
        assert timer._event is not first_event
        sim.run()
        assert fired == [100]

    def test_cancel_prevents_fire(self, mode):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(True))
        self._arm(timer, sim, 100, mode)
        timer.cancel()
        assert not timer.armed
        sim.run()
        assert not fired

    def test_rearm_replaces_args(self, mode):
        sim = Simulator()
        got = []
        timer = Timer(sim, lambda x: got.append(x))
        self._arm(timer, sim, 100, mode, "stale")
        self._arm(timer, sim, 200, mode, "fresh")
        sim.run()
        assert got == ["fresh"]

    def test_past_deadline_rejected(self, mode):
        sim = Simulator()
        sim.run(until=1_000)
        timer = Timer(sim, lambda: None)
        with pytest.raises(ValueError):
            self._arm(timer, sim, 500, mode)

    def test_rearm_after_fire_uses_pool(self, mode):
        # Steady-state re-arms go through the event pool: after the
        # first fire, arming again must reuse a recycled event.
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        self._arm(timer, sim, 100, mode)
        sim.run()
        hits_before = sim._queue.stats()["pool_hits"]
        self._arm(timer, sim, sim.now + 100, mode)
        assert sim._queue.stats()["pool_hits"] == hits_before + 1
        sim.run()
        assert fired == [100, 200]

    def test_stale_generation_guard(self, mode):
        # If the timer's event has been recycled into an unrelated role
        # (gen bumped), the timer must treat its reference as dead:
        # cancel() must not kill the recycled event, and re-arming must
        # schedule a fresh one instead of extending the stale one.
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        self._arm(timer, sim, 100, mode)
        event = timer._event
        event.gen += 1  # simulate the run loop recycling this event
        timer.cancel()
        assert not event.cancelled
        self._arm(timer, sim, 50, mode)
        assert timer._event is not event


class TestSeededRandom:
    def test_deterministic(self):
        a = SeededRandom(42)
        b = SeededRandom(42)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_fork_independent_and_stable(self):
        a1 = SeededRandom(42).fork("x")
        a2 = SeededRandom(42).fork("x")
        b = SeededRandom(42).fork("y")
        seq1 = [a1.random() for _ in range(3)]
        assert seq1 == [a2.random() for _ in range(3)]
        assert seq1 != [b.random() for _ in range(3)]

    def test_chance_extremes(self):
        rng = SeededRandom(1)
        assert rng.chance(0.0) is False
        assert rng.chance(1.0) is True

    def test_jitter_bounds(self):
        rng = SeededRandom(1)
        for _ in range(50):
            assert 0 <= rng.jitter_ns(100) <= 100
        assert rng.jitter_ns(0) == 0


class TestTraceSinks:
    def test_list_sink_records_per_key(self):
        sink = ListTraceSink()
        sink.record(1, "a", 10)
        sink.record(2, "a", 20)
        sink.record(1, "b", 5)
        assert sink.series("a") == [(1, 10), (2, 20)]
        assert sink.series("b") == [(1, 5)]
        assert sink.series("missing") == []
        assert sink.keys() == ["a", "b"]

    def test_null_sink_discards(self):
        sink = NullTraceSink()
        sink.record(1, "a", 10)  # must not raise
        assert sink.enabled is False
