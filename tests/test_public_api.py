"""Public API surface: imports, exports, docstrings."""

import importlib
import inspect

import pytest

MODULES = [
    "repro",
    "repro.units",
    "repro.sim",
    "repro.sim.events",
    "repro.sim.simulator",
    "repro.sim.timers",
    "repro.sim.rng",
    "repro.sim.trace",
    "repro.net",
    "repro.net.addressing",
    "repro.net.packet",
    "repro.net.link",
    "repro.net.queues",
    "repro.net.node",
    "repro.net.switch",
    "repro.net.capture",
    "repro.net.pcap",
    "repro.rdcn",
    "repro.rdcn.config",
    "repro.rdcn.schedule",
    "repro.rdcn.fabric",
    "repro.rdcn.notifier",
    "repro.rdcn.topology",
    "repro.rdcn.rotor",
    "repro.rdcn.opera",
    "repro.tcp",
    "repro.tcp.config",
    "repro.tcp.ranges",
    "repro.tcp.buffers",
    "repro.tcp.sack" if False else "repro.tcp.options",
    "repro.tcp.rtt",
    "repro.tcp.state",
    "repro.tcp.rack",
    "repro.tcp.connection",
    "repro.tcp.sockets",
    "repro.tcp.introspect",
    "repro.tcp.cc",
    "repro.tcp.cc.base",
    "repro.tcp.cc.reno",
    "repro.tcp.cc.cubic",
    "repro.tcp.cc.dctcp",
    "repro.tcp.cc.highspeed",
    "repro.tcp.cc.westwood",
    "repro.core",
    "repro.core.tdtcp",
    "repro.core.tdn_state",
    "repro.core.reordering",
    "repro.core.rtt",
    "repro.mptcp",
    "repro.mptcp.connection",
    "repro.mptcp.subflow",
    "repro.mptcp.scheduler",
    "repro.retcp",
    "repro.retcp.retcp",
    "repro.retcp.dynbuf",
    "repro.apps",
    "repro.apps.bulk",
    "repro.apps.workload",
    "repro.apps.background",
    "repro.apps.shortflows",
    "repro.apps.tracegen",
    "repro.apps.incast",
    "repro.obs",
    "repro.obs.tracepoints",
    "repro.obs.metrics",
    "repro.obs.exporters",
    "repro.obs.profiling",
    "repro.obs.telemetry",
    "repro.metrics",
    "repro.metrics.collectors",
    "repro.metrics.seqgraph",
    "repro.metrics.cdf",
    "repro.metrics.fairness",
    "repro.experiments",
    "repro.experiments.config",
    "repro.experiments.variants",
    "repro.experiments.runner",
    "repro.experiments.executor",
    "repro.experiments.figures",
    "repro.experiments.report",
    "repro.experiments.sweeps",
    "repro.experiments.cli",
]


@pytest.mark.parametrize("name", MODULES)
def test_module_imports_and_documented(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} is missing a module docstring"


@pytest.mark.parametrize(
    "name",
    ["repro", "repro.sim", "repro.net", "repro.rdcn", "repro.tcp",
     "repro.core", "repro.mptcp", "repro.retcp", "repro.apps",
     "repro.metrics", "repro.obs"],
)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"


def test_version():
    import repro

    assert repro.__version__


def test_public_classes_have_docstrings():
    from repro.core import TDTCPConnection
    from repro.tcp import TCPConnection
    from repro.mptcp import MPTCPConnection
    from repro.retcp import ReTCPConnection

    for cls in (TDTCPConnection, TCPConnection, MPTCPConnection, ReTCPConnection):
        assert inspect.getdoc(cls)
        public = [
            m for name, m in inspect.getmembers(cls, predicate=inspect.isfunction)
            if not name.startswith("_")
        ]
        for method in public:
            assert inspect.getdoc(method), f"{cls.__name__}.{method.__name__} undocumented"
