"""Fairness: Jain-index utility plus end-to-end fairness of competing
flows (§3.5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import ExperimentConfig, run_experiment
from repro.metrics.fairness import jain_index, max_min_ratio


class TestJainIndex:
    def test_perfect_fairness(self):
        assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_total_unfairness(self):
        assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert jain_index([]) == 0.0
        assert jain_index([0, 0]) == 0.0

    def test_single_flow(self):
        assert jain_index([42]) == pytest.approx(1.0)

    @given(st.lists(st.floats(0.1, 1000), min_size=1, max_size=30))
    @settings(max_examples=100)
    def test_bounds(self, allocations):
        index = jain_index(allocations)
        assert 1.0 / len(allocations) - 1e-9 <= index <= 1.0 + 1e-9

    @given(st.floats(0.1, 1000), st.integers(1, 20))
    @settings(max_examples=50)
    def test_scale_invariance(self, value, n):
        assert jain_index([value] * n) == pytest.approx(1.0)


class TestMaxMinRatio:
    def test_equal(self):
        assert max_min_ratio([3, 3, 3]) == 1.0

    def test_skewed(self):
        assert max_min_ratio([1, 4]) == 4.0

    def test_starved_flow(self):
        assert max_min_ratio([0, 5]) == float("inf")

    def test_empty(self):
        assert max_min_ratio([]) == 1.0


class TestEndToEndFairness:
    @pytest.mark.parametrize("variant", ["cubic", "tdtcp"])
    def test_competing_flows_share_fairly(self, variant):
        """§3.5: per-TDN CUBIC should be roughly as fair as plain
        CUBIC. Long-run per-flow deliveries must be balanced."""
        cfg = ExperimentConfig(variant=variant, n_flows=4, weeks=24, warmup_weeks=6)
        result = run_experiment(cfg)
        index = jain_index(result.flow_delivered)
        assert index > 0.85, f"{variant} flows diverged: {result.flow_delivered}"

    def test_tdtcp_fairness_comparable_to_cubic(self):
        cubic = run_experiment(ExperimentConfig(variant="cubic", n_flows=4, weeks=24, warmup_weeks=6))
        tdtcp = run_experiment(ExperimentConfig(variant="tdtcp", n_flows=4, weeks=24, warmup_weeks=6))
        assert jain_index(tdtcp.flow_delivered) > jain_index(cubic.flow_delivered) - 0.15
