"""Short-flow workload and the §5.1 no-impact expectation."""

import pytest

from repro.apps.shortflows import ShortFlowGenerator, run_short_flow_study
from repro.core.tdtcp import TDTCPConnection
from repro.metrics.cdf import quantile
from repro.rdcn.topology import build_two_rack_testbed
from repro.sim.rng import SeededRandom
from repro.tcp.connection import TCPConnection
from repro.units import msec, usec

from tests.helpers import small_rdcn, two_hosts


class TestGenerator:
    def test_flows_launch_and_complete(self):
        sim, a, b, _ab, _ba = two_hosts()
        gen = ShortFlowGenerator(
            sim, a, b, SeededRandom(3),
            flow_size_bytes=15_000, mean_interarrival_ns=usec(300),
        )
        gen.start()
        sim.run(until=msec(10))
        gen.stop()
        assert len(gen.stats.records) > 10
        assert gen.stats.completion_rate() > 0.9

    def test_fct_positive_and_reasonable(self):
        sim, a, b, _ab, _ba = two_hosts()
        gen = ShortFlowGenerator(
            sim, a, b, SeededRandom(3),
            flow_size_bytes=15_000, mean_interarrival_ns=usec(500),
        )
        gen.start()
        sim.run(until=msec(10))
        fcts = gen.stats.fct_values_us()
        assert fcts
        # 15 KB over a 10 Gbps / 40 us-RTT path: tens to hundreds of us.
        assert min(fcts) > 10
        assert quantile(fcts, 0.5) < 2_000

    def test_stop_halts_launches(self):
        sim, a, b, _ab, _ba = two_hosts()
        gen = ShortFlowGenerator(sim, a, b, SeededRandom(3))
        gen.start()
        sim.run(until=msec(2))
        gen.stop()
        count = len(gen.stats.records)
        sim.run(until=msec(6))
        assert len(gen.stats.records) == count

    def test_connections_cleaned_up(self):
        sim, a, b, _ab, _ba = two_hosts()
        gen = ShortFlowGenerator(
            sim, a, b, SeededRandom(3), mean_interarrival_ns=usec(200),
        )
        gen.start()
        sim.run(until=msec(20))
        gen.stop()
        sim.run(until=msec(25))
        # Far fewer registered connections than launched flows.
        assert len(a._connections) < len(gen.stats.records) / 2


class TestShortFlowsOnRDCN:
    def test_paper_claim_tdtcp_does_not_hurt_short_flows(self):
        """§5.1: TDTCP should not impact short-flow completion times.
        Compare median FCT of 10-segment RPCs under plain TCP vs TDTCP
        on the same RDCN."""
        results = {}
        for name, cls, kwargs in (
            ("tcp", TCPConnection, {}),
            ("tdtcp", TDTCPConnection, {"tdn_count": 2}),
        ):
            testbed = build_two_rack_testbed(small_rdcn(n_hosts=2))
            stats = run_short_flow_study(
                testbed, cls,
                duration_ns=testbed.config.week_ns * 20,
                flow_size_bytes=15_000,
                mean_interarrival_ns=usec(400),
                **kwargs,
            )
            assert stats.completion_rate() > 0.9
            results[name] = quantile(stats.fct_values_us(), 0.5)
        # Within a modest band of each other (no harm, no magic).
        ratio = results["tdtcp"] / results["tcp"]
        assert 0.5 < ratio < 2.0, results
