"""Metrics: step interpolation, week folding, analytic curves, CDFs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.cdf import empirical_cdf, fraction_at_or_below, quantile
from repro.metrics.collectors import EventCounterCollector, QueueOccupancyCollector
from repro.metrics.seqgraph import (
    constant_rate_curve,
    fold_series_by_week,
    optimal_curve,
    step_interpolate,
    tile_weeks,
)
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.rdcn.schedule import TDNSchedule
from repro.sim import Simulator
from repro.units import gbps, usec


class TestStepInterpolate:
    def test_previous_value_semantics(self):
        times = np.array([10, 20, 30])
        values = np.array([1.0, 2.0, 3.0])
        grid = np.array([5, 10, 15, 25, 40])
        out = step_interpolate(times, values, grid, initial=0.0)
        assert list(out) == [0.0, 1.0, 1.0, 2.0, 3.0]

    def test_empty_series(self):
        out = step_interpolate(np.array([]), np.array([]), np.array([1, 2]), initial=7.0)
        assert list(out) == [7.0, 7.0]


class TestFoldByWeek:
    def test_constant_rate_folds_to_line(self):
        week = 1000
        samples = [(t, t * 2.0) for t in range(0, 10 * week, 50)]
        grid, curve, progress = fold_series_by_week(samples, week, 10, warmup_weeks=2)
        assert progress == pytest.approx(2.0 * week, rel=0.05)
        # Within-week curve is linear from 0.
        assert curve[0] == pytest.approx(0.0, abs=110)
        assert curve[-1] == pytest.approx(2.0 * grid[-1], rel=0.1)

    def test_level_series_averages(self):
        week = 1000
        # Queue length alternates 5 in the first half-week, 10 in the second.
        samples = []
        for w in range(6):
            samples.append((w * week, 5))
            samples.append((w * week + 500, 10))
        grid, curve, progress = fold_series_by_week(
            samples, week, 6, warmup_weeks=1, cumulative=False
        )
        assert progress == 0.0
        assert curve[0] == pytest.approx(5.0)
        assert curve[-1] == pytest.approx(10.0)

    def test_needs_post_warmup_weeks(self):
        with pytest.raises(ValueError):
            fold_series_by_week([(0, 0)], 1000, 2, warmup_weeks=2)

    @given(st.integers(1, 5), st.integers(3, 8))
    @settings(max_examples=30)
    def test_periodic_input_reproduced_exactly(self, rate, weeks):
        """A strictly periodic cumulative series folds to its one-week
        shape regardless of how many weeks are averaged."""
        week = 700
        samples = [(t, (t // 7) * rate) for t in range(0, weeks * week, 7)]
        grid, curve, progress = fold_series_by_week(samples, week, weeks, warmup_weeks=1)
        assert progress == pytest.approx(week / 7 * rate, rel=0.05)


class TestTileWeeks:
    def test_tiling_offsets(self):
        grid = np.array([0, 100, 200])
        curve = np.array([0.0, 1.0, 2.0])
        times, values = tile_weeks(grid, curve, mean_week_progress=3.0, week_ns=300, n_weeks=2)
        assert list(times) == [0, 100, 200, 300, 400, 500]
        assert list(values) == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]


class TestAnalyticCurves:
    def schedule(self):
        return TDNSchedule.uniform((0, 0, 1), usec(100), usec(10))

    def test_optimal_curve_total(self):
        s = self.schedule()
        times, values = optimal_curve(s, [gbps(10), gbps(100)], n_weeks=1, grid_points_per_week=330)
        # Total bytes over a week: 2 * 100us at 10G + 100us at 100G.
        expected = (2 * 100e-6 * 10e9 + 100e-6 * 100e9) / 8
        assert values[-1] == pytest.approx(expected, rel=0.02)

    def test_optimal_flat_during_nights(self):
        s = self.schedule()
        times, values = optimal_curve(s, [gbps(10), gbps(100)], n_weeks=1, grid_points_per_week=660)
        # Sample inside the first night (100..110 us).
        inside = [v for t, v in zip(times, values) if usec(101) <= t < usec(109)]
        assert max(inside) - min(inside) < 1500  # essentially flat

    def test_optimal_steeper_on_optical(self):
        s = self.schedule()
        times, values = optimal_curve(s, [gbps(10), gbps(100)], n_weeks=1, grid_points_per_week=660)
        def slope(t0, t1):
            i0 = np.searchsorted(times, t0)
            i1 = np.searchsorted(times, t1)
            return (values[i1] - values[i0]) / (times[i1] - times[i0])
        packet_slope = slope(usec(10), usec(90))
        optical_slope = slope(usec(230), usec(310))
        assert optical_slope == pytest.approx(10 * packet_slope, rel=0.05)

    def test_constant_rate_curve(self):
        times, values = constant_rate_curve(gbps(10), usec(1000), grid_points=100)
        assert values[0] == 0.0
        # slope = 10G/8 bytes per second.
        assert values[-1] == pytest.approx(10e9 / 8 * times[-1] / 1e9, rel=0.01)

    def test_multi_week_continuity(self):
        s = self.schedule()
        times, values = optimal_curve(s, [gbps(10), gbps(100)], n_weeks=3, grid_points_per_week=330)
        assert all(np.diff(values) >= -1e-9)  # monotone non-decreasing


class TestCDF:
    def test_empirical_cdf(self):
        x, p = empirical_cdf([3, 1, 2])
        assert list(x) == [1, 2, 3]
        assert list(p) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty(self):
        x, p = empirical_cdf([])
        assert len(x) == 0 and len(p) == 0
        assert quantile([], 0.5) == 0.0
        assert fraction_at_or_below([], 1) == 0.0

    def test_quantile(self):
        samples = list(range(1, 101))
        assert quantile(samples, 0.5) == pytest.approx(50.5)
        assert quantile(samples, 1.0) == 100
        with pytest.raises(ValueError):
            quantile(samples, 1.5)

    def test_fraction_at_or_below(self):
        assert fraction_at_or_below([0, 0, 1, 2], 0) == 0.5
        assert fraction_at_or_below([5], 4) == 0.0

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_cdf_properties(self, samples):
        x, p = empirical_cdf(samples)
        assert list(x) == sorted(samples)
        assert p[-1] == pytest.approx(1.0)
        assert all(np.diff(p) > 0 - 1e-12)


class TestCollectors:
    def test_queue_collector_records_changes(self):
        sim = Simulator()
        q = DropTailQueue(4)
        collector = QueueOccupancyCollector(sim, q)
        q.push(Packet("a", "b", 1), sim.now)
        sim.now = 100
        q.push(Packet("a", "b", 1), sim.now)
        sim.now = 200
        q.pop()
        assert collector.samples == [(0, 0), (0, 1), (100, 2), (200, 1)]
        assert collector.max_occupancy() == 2

    def test_event_counter_buckets_by_week(self):
        s = TDNSchedule.uniform((0, 1), usec(100), usec(10))
        counter = EventCounterCollector(s)
        counter.record(usec(50))          # week 0
        counter.record(usec(250), 2)      # week 1
        counter.record(usec(260))         # week 1
        assert counter.per_day_counts(total_weeks=3) == [1, 3, 0]

    def test_event_counter_warmup_skipped(self):
        s = TDNSchedule.uniform((0, 1), usec(100), usec(10))
        counter = EventCounterCollector(s)
        counter.record(usec(50))
        counter.record(usec(250))
        assert counter.per_day_counts(total_weeks=3, warmup_weeks=1) == [1, 0]

    def test_zero_days_present(self):
        s = TDNSchedule.uniform((0, 1), usec(100), usec(10))
        counter = EventCounterCollector(s)
        assert counter.per_day_counts(total_weeks=4) == [0, 0, 0, 0]
