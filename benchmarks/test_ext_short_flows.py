"""Extension: short-lived flows (§5.1's deferred claim).

"Overall, we do not expect TDTCP to impact the completion time of
short-lived flows but a full treatment is outside the scope of this
paper." — the treatment: Poisson arrivals of 10-segment RPCs on the
paper's RDCN, FCT distributions under plain TCP vs TDTCP.
"""

from repro.apps.shortflows import run_short_flow_study
from repro.core.tdtcp import TDTCPConnection
from repro.metrics.cdf import quantile
from repro.rdcn.config import RDCNConfig
from repro.rdcn.topology import build_two_rack_testbed
from repro.tcp.connection import TCPConnection
from repro.units import usec

from benchmarks.conftest import emit


def test_ext_short_flow_fct(benchmark, results_dir, scale):
    def study():
        out = {}
        for name, cls, kwargs in (
            ("tcp", TCPConnection, {}),
            ("tdtcp", TDTCPConnection, {"tdn_count": 2}),
        ):
            testbed = build_two_rack_testbed(RDCNConfig(seed=scale["seed"]))
            stats = run_short_flow_study(
                testbed, cls,
                duration_ns=testbed.config.week_ns * max(scale["weeks"], 20),
                flow_size_bytes=15_000,
                mean_interarrival_ns=usec(400),
                **kwargs,
            )
            out[name] = stats
        return out

    results = benchmark.pedantic(study, rounds=1, iterations=1)
    lines = ["short-flow FCT (15 KB RPCs, Poisson arrivals on the paper's RDCN):"]
    for name, stats in results.items():
        fcts = stats.fct_values_us()
        lines.append(
            f"  {name:<6} n={len(fcts):4d} completion={stats.completion_rate() * 100:5.1f}%  "
            f"p50={quantile(fcts, 0.5):7.1f}us  p90={quantile(fcts, 0.9):7.1f}us  "
            f"p99={quantile(fcts, 0.99):7.1f}us"
        )
    lines.append("paper expectation: no impact (claim deferred in §5.1)")
    emit(results_dir, "ext_short_flows", "\n".join(lines))

    tcp_p50 = quantile(results["tcp"].fct_values_us(), 0.5)
    tdtcp_p50 = quantile(results["tdtcp"].fct_values_us(), 0.5)
    assert 0.5 < tdtcp_p50 / tcp_p50 < 2.0
    for stats in results.values():
        assert stats.completion_rate() > 0.9
