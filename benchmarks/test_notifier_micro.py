"""§5.4 microbenchmarks: the three notification-path optimizations.

Paper-reported component improvements:

* ICMP packet caching: 8x at p50, 2.7x at p99 (generation latency);
* push -> pull flow update: ~3 orders of magnitude (total update time);
* dedicated control network: 5x (end-to-end one-way latency) — here
  demonstrated as dedicated vs shared delivery under data-plane load.
"""

from repro.experiments import ExperimentConfig, run_experiment
from repro.metrics.cdf import quantile
from repro.rdcn.config import NotifierConfig, RDCNConfig
from repro.rdcn.notifier import sample_generation_delay_ns
from repro.sim.rng import SeededRandom

from benchmarks.conftest import emit


def test_icmp_packet_caching(benchmark, results_dir):
    cfg = NotifierConfig()
    rng = SeededRandom(17)

    def sample_both():
        cached = [
            sample_generation_delay_ns(rng, cfg.generation_cached_p50_ns, cfg.generation_cached_tail_ns)
            for _ in range(50_000)
        ]
        uncached = [
            sample_generation_delay_ns(rng, cfg.generation_uncached_p50_ns, cfg.generation_uncached_tail_ns)
            for _ in range(50_000)
        ]
        return cached, uncached

    cached, uncached = benchmark.pedantic(sample_both, rounds=1, iterations=1)
    p50 = quantile(uncached, 0.5) / quantile(cached, 0.5)
    p99 = quantile(uncached, 0.99) / quantile(cached, 0.99)
    emit(
        results_dir,
        "micro_caching",
        "ICMP generation latency, uncached/cached ratio:\n"
        f"  p50: {p50:.1f}x (paper: 8x)\n"
        f"  p99: {p99:.1f}x (paper: 2.7x)",
    )
    assert 5.0 < p50 < 11.0
    assert 1.5 < p99 < 4.5


def test_push_vs_pull_update(benchmark, results_dir):
    """Total time to update N flows: push walks them one by one, pull is
    a single shared variable read per flow."""
    push = NotifierConfig(pull_model=False)
    pull = NotifierConfig(pull_model=True)
    n_flows = 64

    def totals():
        push_total = sum(push.push_per_flow_cost_ns * (i + 1) for i in range(n_flows))
        pull_total = sum(pull.pull_read_cost_ns for _ in range(n_flows))
        return push_total, pull_total

    push_total, pull_total = benchmark.pedantic(totals, rounds=1, iterations=1)
    ratio = push_total / pull_total
    emit(
        results_dir,
        "micro_push_pull",
        f"flow update time, push/pull ratio over {n_flows} flows: "
        f"{ratio:.0f}x (paper: ~3 orders of magnitude)",
    )
    assert ratio > 1_000


def test_dedicated_vs_shared_network(benchmark, results_dir):
    """End-to-end notification latency with a loaded data plane."""

    def run_both():
        latencies = {}
        for name, dedicated in (("dedicated", True), ("shared", False)):
            cfg = ExperimentConfig(
                variant="tdtcp",
                rdcn=RDCNConfig(
                    notifier=NotifierConfig(dedicated_network=dedicated)
                ),
                n_flows=8,
                weeks=10,
                warmup_weeks=2,
            )
            result = run_experiment(cfg)
            latencies[name] = result.notification_latencies
        return latencies

    latencies = benchmark.pedantic(run_both, rounds=1, iterations=1)
    p50 = quantile(latencies["shared"], 0.5) / max(quantile(latencies["dedicated"], 0.5), 1)
    p99 = quantile(latencies["shared"], 0.99) / max(quantile(latencies["dedicated"], 0.99), 1)
    emit(
        results_dir,
        "micro_dedicated",
        "notification one-way latency, shared/dedicated ratio under load:\n"
        f"  p50: {p50:.1f}x (paper: 5x)\n"
        f"  p99: {p99:.1f}x (paper: 5x)",
    )
    assert p50 > 1.5  # shared clearly slower under data-plane load
