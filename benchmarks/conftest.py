"""Benchmark harness support.

Every benchmark regenerates one of the paper's figures as text tables
and writes them under ``benchmarks/results/`` (also echoed to stdout,
visible with ``pytest -s``). Scale knobs come from environment
variables so a full-fidelity run is one command away:

    REPRO_WEEKS=120 REPRO_FLOWS=16 pytest benchmarks/ --benchmark-only
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# Scaled-down defaults: tens of weeks instead of the paper's thousands.
WEEKS = int(os.environ.get("REPRO_WEEKS", "24"))
WARMUP = int(os.environ.get("REPRO_WARMUP", "8"))
FLOWS = int(os.environ.get("REPRO_FLOWS", "8"))
SEED = int(os.environ.get("REPRO_SEED", "1"))


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def scale():
    return {"weeks": WEEKS, "warmup_weeks": WARMUP, "n_flows": FLOWS, "seed": SEED}


def emit(results_dir, name: str, text: str) -> None:
    """Print a figure's tables and persist them."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
