"""Extension: incast (synchronized many-to-one) on the RDCN.

Not a paper figure — the classic DCN stress pattern, run on the paper's
fabric: N workers respond to one aggregator in barrier-style rounds.
Expected shape: round times grow with fan-in; TDTCP neither helps nor
hurts materially (rounds are short-flow-like, §5.1), and its per-TDN
accounting survives the convergence."""

from repro.apps.incast import run_incast
from repro.core.tdtcp import TDTCPConnection
from repro.metrics.cdf import quantile
from repro.rdcn.config import RDCNConfig
from repro.rdcn.topology import build_two_rack_testbed
from repro.tcp.connection import TCPConnection

from benchmarks.conftest import emit


def test_ext_incast_fanin(benchmark, results_dir, scale):
    def study():
        out = {}
        for name, cls, kwargs in (
            ("tcp", TCPConnection, {}),
            ("tdtcp", TDTCPConnection, {"tdn_count": 2}),
        ):
            rows = {}
            for n_workers in (2, 4, 8):
                tb = build_two_rack_testbed(
                    RDCNConfig(n_hosts_per_rack=8, seed=scale["seed"])
                )
                coordinator = run_incast(
                    tb, n_workers=n_workers,
                    duration_ns=tb.config.week_ns * max(scale["weeks"], 16),
                    connection_cls=cls, **kwargs,
                )
                rows[n_workers] = coordinator
            out[name] = rows
        return out

    results = benchmark.pedantic(study, rounds=1, iterations=1)
    lines = ["incast round times (30 KB blocks/worker, barrier rounds):",
             f"{'variant':<8} {'workers':>8} {'rounds':>7} {'p50 us':>8} {'p99 us':>9}"]
    for name, rows in results.items():
        for n_workers, coordinator in rows.items():
            times = coordinator.stats.round_times_us()
            lines.append(
                f"{name:<8} {n_workers:>8} {len(times):>7} "
                f"{quantile(times, 0.5):>8.1f} {quantile(times, 0.99):>9.1f}"
            )
    emit(results_dir, "ext_incast", "\n".join(lines))

    for name, rows in results.items():
        p50 = {n: quantile(c.stats.round_times_us(), 0.5) for n, c in rows.items()}
        assert p50[8] > p50[2], f"{name}: fan-in squeeze missing"
        assert len(rows[8].stats.completed) >= 3
    # TDTCP within a sane band of plain TCP (short-flow non-impact).
    tcp_p50 = quantile(results["tcp"][4].stats.round_times_us(), 0.5)
    tdtcp_p50 = quantile(results["tdtcp"][4].stats.round_times_us(), 0.5)
    assert 0.5 < tdtcp_p50 / tcp_p50 < 2.0
