"""Extensions the paper proposes but defers.

* §5.1 future work: behaviour under duty-cycle ratios other than 6:1;
* §3.5: operating regime — day lengths across the 1-100x RTT band;
* Figure 9's closing hypothesis: "the TDTCP approach could allow even
  latency-sensitive congestion control algorithms to perform well in
  such RDCN settings" — tested by running DCTCP inside each TDN of a
  TDTCP connection on the latency-only fabric.
"""

from dataclasses import replace

from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.figures import latency_only_rdcn
from repro.experiments.sweeps import day_length_sweep, duty_ratio_sweep
from repro.experiments.variants import TDTCPVariant, VARIANTS
from repro.core.tdtcp import TDTCPConnection
from repro.tcp.sockets import create_connection_pair

from benchmarks.conftest import emit


def test_ext_duty_ratio_sweep(benchmark, results_dir, scale):
    """The 6:1 setting is where TDTCP shines most; the advantage must
    shrink toward an always-optical (1:1-ish) fabric and persist at
    rarer circuits."""
    result = benchmark.pedantic(
        lambda: duty_ratio_sweep(
            packet_days=(2, 6, 13),
            weeks=scale["weeks"], warmup_weeks=scale["warmup_weeks"],
            n_flows=scale["n_flows"], seed=scale["seed"],
        ),
        rounds=1, iterations=1,
    )
    emit(results_dir, "ext_duty_ratio", result.render())
    table = result.by_label()
    for label, row in table.items():
        assert row["tdtcp"] > row["cubic"] * 0.95, f"tdtcp collapsed at {label}"
    # The advantage shrinks as circuits become rarer (13:1): less
    # optical capacity exists for per-TDN state to unlock. (Measured:
    # the gain *grows* toward 2:1, where a third of the week is
    # optical — more capacity at stake, same mechanism.)
    gain = lambda row: row["tdtcp"] / row["cubic"]
    assert gain(table["13:1"]) < gain(table["6:1"])


def test_ext_day_length_sweep(benchmark, results_dir, scale):
    """§3.5's operating-regime claim, sampled at ~0.6x / ~2x / ~10x of
    the packet RTT."""
    result = benchmark.pedantic(
        lambda: day_length_sweep(
            day_us_values=(60, 180, 1000),
            weeks=scale["weeks"], warmup_weeks=scale["warmup_weeks"],
            n_flows=scale["n_flows"], seed=scale["seed"],
        ),
        rounds=1, iterations=1,
    )
    emit(results_dir, "ext_day_length", result.render())
    table = result.by_label()
    # TDTCP helps everywhere in the band; the advantage is largest
    # where days are a handful of RTTs (the paper's setting).
    assert table["180us"]["tdtcp"] > table["180us"]["cubic"]


class _DCTCPInsideTDTCP(TDTCPVariant):
    """TDTCP running DCTCP inside every TDN."""

    def __init__(self):
        super().__init__(name="tdtcp")

    def make_flow(self, testbed, src, dst, index, exp_config, context):
        return create_connection_pair(
            testbed.sim, src, dst,
            cc_name="dctcp", config=exp_config.tcp,
            connection_cls=TDTCPConnection,
            tdn_count=testbed.config.n_tdns,
            cc_names=["dctcp"] * testbed.config.n_tdns,
        )


def test_ext_latency_sensitive_cca_inside_tdtcp(benchmark, results_dir, scale):
    """Figure 9 hypothesis: plain DCTCP under latency-only variation is
    the worst single-path variant; DCTCP-per-TDN inside TDTCP recovers
    (most of) the gap because each TDN keeps its own alpha and window."""

    def run_all():
        rdcn = latency_only_rdcn(100.0)
        out = {}
        for name in ("dctcp", "cubic"):
            cfg = ExperimentConfig(
                variant=name, rdcn=rdcn,
                n_flows=scale["n_flows"], weeks=scale["weeks"],
                warmup_weeks=scale["warmup_weeks"], seed=scale["seed"],
            )
            out[name] = run_experiment(cfg).steady_state_throughput_gbps()
        original = VARIANTS["tdtcp"]
        spec = _DCTCPInsideTDTCP()
        spec.needs_ecn = True  # DCTCP needs marking queues
        VARIANTS["tdtcp"] = spec
        try:
            cfg = ExperimentConfig(
                variant="tdtcp", rdcn=rdcn,
                n_flows=scale["n_flows"], weeks=scale["weeks"],
                warmup_weeks=scale["warmup_weeks"], seed=scale["seed"],
            )
            out["tdtcp+dctcp"] = run_experiment(cfg).steady_state_throughput_gbps()
        finally:
            VARIANTS["tdtcp"] = original
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = "latency-only fabric (100 Gbps, ~20/10 us RTT):\n" + "\n".join(
        f"  {name:<12} {thr:6.2f} Gbps" for name, thr in results.items()
    )
    emit(results_dir, "ext_dctcp_per_tdn", text)
    # The hypothesis: per-TDN DCTCP at least matches plain DCTCP.
    assert results["tdtcp+dctcp"] >= results["dctcp"] * 0.9
