"""Figure 8: bandwidth difference only (latency equal across TDNs).

Expected shape: CUBIC and DCTCP adapt to pure bandwidth variation —
they clearly exceed the packet-only rate, unlike the paper's Figure 2
regime — while MPTCP still struggles. Partial deviation (recorded in
EXPERIMENTS.md): the paper reports near-parity between CUBIC and TDTCP
here; our single-path stack is equally clean in the Figure-7 setting
(no 200 ms-RTO stalls), so the *contrast* between the two figures is
smaller — CUBIC captures the same ~2/3 of TDTCP's throughput in both.
"""

from repro.experiments.figures import fig8
from repro.experiments.report import (
    render_seq_graph,
    render_throughput_summary,
    render_voq_graph,
)

from benchmarks.conftest import emit


def test_fig08_bandwidth_only(benchmark, results_dir, scale):
    data = benchmark.pedantic(
        lambda: fig8(**scale), rounds=1, iterations=1, warmup_rounds=0
    )
    text = "\n\n".join(
        [
            render_seq_graph(data, points=14),
            render_voq_graph(data, points=14),
            render_throughput_summary(data),
        ]
    )
    emit(results_dir, "fig08", text)

    thr = data.throughputs_gbps
    packet_gbps = data.rdcn.packet_rate_bps / 1e9
    # Single-path variants adapt to bandwidth-only variation: clearly
    # above the packet-only rate (Figure 8a's contrast with Figure 2).
    assert thr["cubic"] > packet_gbps * 1.15
    assert thr["dctcp"] > packet_gbps * 1.15
    assert thr["cubic"] > thr["tdtcp"] * 0.55
    # MPTCP still brings up the rear.
    assert thr["mptcp"] == min(thr.values())
