"""Figure 13 (Appendix A.3): ToR VOQ occupancy for CUBIC and MPTCP in
the hybrid RDCN.

Expected shape: CUBIC keeps the VOQ near-full through the packet days
and drains it during the optical day (service rate >> arrival rate
there); MPTCP shows the tdm_schd switching dip."""

from repro.experiments.figures import fig13
from repro.experiments.report import render_throughput_summary, render_voq_graph

from benchmarks.conftest import emit


def test_fig13_voq_occupancy(benchmark, results_dir, scale):
    data = benchmark.pedantic(
        lambda: fig13(**scale), rounds=1, iterations=1, warmup_rounds=0
    )
    text = "\n\n".join(
        [render_voq_graph(data, points=21), render_throughput_summary(data)]
    )
    emit(results_dir, "fig13", text)

    # The optical day drains the CUBIC VOQ: its minimum folded occupancy
    # is far below its packet-day level.
    times, curve = data.voq_curves["cubic"]
    week_ns = data.rdcn.week_ns
    one_week = curve[: len(curve) // data.weeks_plotted]
    optical_start = 6 * (data.rdcn.day_ns + data.rdcn.night_ns)
    week_times = times[: len(one_week)]
    packet_levels = [v for t, v in zip(week_times, one_week) if t < optical_start // 2]
    optical_levels = [
        v for t, v in zip(week_times, one_week)
        if optical_start + data.rdcn.day_ns // 3 <= t < optical_start + data.rdcn.day_ns
    ]
    assert min(optical_levels) < max(packet_levels) * 0.5
