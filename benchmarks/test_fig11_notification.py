"""Figure 11: TDTCP with vs without the TDN-change-notification
optimizations of §5.4 (packet caching, pull model, dedicated network).

Expected shape: the optimized stack delivers more (paper: +12.7%)
because senders learn of TDN changes earlier and waste less of each
day."""

from repro.experiments.figures import fig11
from repro.experiments.report import render_seq_graph, render_throughput_summary

from benchmarks.conftest import emit


def test_fig11_notification_optimizations(benchmark, results_dir, scale):
    data = benchmark.pedantic(
        lambda: fig11(**scale), rounds=1, iterations=1, warmup_rounds=0
    )
    thr = data.throughputs_gbps
    gain = (thr["tdtcp"] / thr["tdtcp-unopt"] - 1) * 100
    opt_lat = data.results["tdtcp"].notification_latencies
    unopt_lat = data.results["tdtcp-unopt"].notification_latencies
    mean = lambda xs: sum(xs) / max(len(xs), 1)
    text = "\n\n".join(
        [
            render_seq_graph(data, points=14),
            render_throughput_summary(data, baseline="tdtcp-unopt"),
            f"optimization gain: {gain:+.1f}% (paper: +12.7%)",
            f"mean notification latency: optimized {mean(opt_lat) / 1000:.2f} us, "
            f"unoptimized {mean(unopt_lat) / 1000:.2f} us",
        ]
    )
    emit(results_dir, "fig11", text)

    assert thr["tdtcp"] > thr["tdtcp-unopt"]
    assert mean(unopt_lat) > mean(opt_lat)
