"""Simulator performance: raw event throughput and end-to-end packet
rates. Not a paper figure — the regression guard that keeps the rest of
the suite tractable.

The end-to-end number is attributed per event callback by the
:mod:`repro.obs` profiler, so ``benchmarks/results/simulator_perf.txt``
shows *where* the wall time goes, not just the aggregate rate."""

from repro.experiments import ExperimentConfig, run_experiment
from repro.obs import ObsConfig
from repro.sim import Simulator

from benchmarks.conftest import emit


def test_event_loop_throughput(benchmark, results_dir):
    """Minimal-callback event processing rate."""

    def spin():
        sim = Simulator()
        count = 200_000

        def chain(remaining):
            if remaining:
                sim.schedule(10, chain, remaining - 1)

        chain(count)
        sim.run()
        return sim.processed_events

    processed = benchmark(spin)
    assert processed >= 200_000


def test_rdcn_packets_per_second(benchmark, results_dir):
    """End-to-end simulation speed on the paper's testbed, with the
    wall time attributed per event callback by the simulator profiler."""

    def run():
        cfg = ExperimentConfig(
            variant="tdtcp",
            n_flows=8,
            weeks=10,
            warmup_weeks=2,
            obs=ObsConfig(profile=True),
        )
        result = run_experiment(cfg)
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    packets = result.aggregate_delivered / result.config.rdcn.mss
    wall_s = benchmark.stats["mean"]
    emit(
        results_dir,
        "simulator_perf",
        f"RDCN simulation speed: ~{packets / wall_s:,.0f} delivered packets/s of wall time\n"
        f"(10 simulated weeks, 8 TDTCP flows, in {wall_s:.2f}s; "
        f"{result.events_per_second:,.0f} events/s inside the run loop)\n\n"
        f"{result.profile_report}",
    )
    assert packets > 10_000
