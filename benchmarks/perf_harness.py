#!/usr/bin/env python
"""Performance-regression harness for the simulator core.

Runs three fixed seeded workloads and one per-ACK micro-benchmark,
emits ``BENCH_simcore.json`` (events/s, ns/ACK, peak RSS, trace
digests, per-workload allocation/event-core stats), and — given a
committed baseline — verifies that

* the JSONL telemetry trace of every workload is **byte-identical** to
  the baseline's (a perf change must not change any simulation result),
* events/s has not regressed by more than ``--tolerance`` (default 20%),
* the deterministic event-core counters still match: ``heap_pushes``
  per workload is pinned to the baseline exactly, and the event-pool
  hit rate stays at or above ``--pool-hit-floor`` (when given).

Each workload is run twice: a timed pass (events/s + deterministic
event-core counters) and an untimed allocation pass under
``tracemalloc`` (peak traced memory + gc collection counts), so the
allocation probe never skews the timing numbers.

Workloads (all seeded, all deterministic):

* ``bulk`` — fig-7 style: 8 long-lived TDTCP flows across the
  reconfigurable fabric (the paper's headline workload);
* ``incast`` — barrier-style N-to-1 convergence on the shared VOQ;
* ``shortflows`` — Poisson churn of 15 KB RPCs (connection setup /
  teardown pressure on the event core).

Usage::

    PYTHONPATH=src python benchmarks/perf_harness.py                  # full scale
    PYTHONPATH=src python benchmarks/perf_harness.py --quick          # CI scale
    PYTHONPATH=src python benchmarks/perf_harness.py --quick \\
        --baseline benchmarks/results/BENCH_simcore_quick.json        # regression gate

Schema v3 adds a ``tiered_bulk`` block: the same bulk workload run at
``fidelity="packet"`` and ``fidelity="tiered"`` (no telemetry on either
leg, so the walls are comparable), reporting the **events-equivalent
speedup** — wall-clock ratio normalized by delivered bytes, i.e. how
many packet-equivalent events per second the fluid fast path stands in
for — plus the engine flow-throughput probe (``engine_flows_per_sec``
both modes on a short empirical-mix run). ``--tiered-speedup-floor``
gates the speedup (CI pins ≥5×). Tiered runs have no trace digest by
design: cross-fidelity agreement is gated statistically in
``tests/test_fastpath.py`` and by the figure-shape check
(``tools/figure_shape_check.py``), not byte-identity.

Exit codes: 0 ok, 1 events/s regression beyond tolerance, 2 trace
divergence (simulation behavior changed — never acceptable for a perf
PR), 3 baseline/mode mismatch, 4 event-core counter regression
(heap-push count drifted from the pinned baseline value, or the pool
hit rate fell below the floor), 5 tiered events-equivalent speedup
below ``--tiered-speedup-floor``.

The JSON schema is documented in ``docs/performance.md``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import sys
import tempfile
from dataclasses import replace
from time import perf_counter

try:
    import resource
except ImportError:  # pragma: no cover - non-Unix
    resource = None

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.apps.incast import run_incast  # noqa: E402
from repro.apps.shortflows import run_short_flow_study  # noqa: E402
from repro.apps.workload import build_workload  # noqa: E402
from repro.core.tdtcp import TDTCPConnection  # noqa: E402
from repro.experiments.config import ExperimentConfig  # noqa: E402
from repro.experiments.variants import get_variant  # noqa: E402
from repro.obs.telemetry import ObsConfig, Telemetry  # noqa: E402
from repro.rdcn.config import RDCNConfig  # noqa: E402
from repro.rdcn.topology import build_two_rack_testbed  # noqa: E402
from repro.sim.simulator import Simulator  # noqa: E402
from repro.units import usec  # noqa: E402

SCHEMA = "bench-simcore/3"
# Older baselines still gate traces + events/s; gates for fields a
# baseline doesn't have (event-core counters on v1, tiered_bulk on
# v1/v2) simply skip.
ACCEPTED_BASELINE_SCHEMAS = (
    "bench-simcore/1", "bench-simcore/2", "bench-simcore/3",
)
DEFAULT_OUT = REPO_ROOT / "benchmarks" / "results" / "BENCH_simcore.json"
# Repo-root copy refreshed on full runs: the top-level perf trajectory.
ROOT_OUT = REPO_ROOT / "BENCH_simcore.json"

# Workload scales. "full" is the committed reference; "quick" is sized
# for CI (same mechanisms, smaller horizon — digests differ by design,
# so baselines are only comparable within the same mode).
SCALES = {
    "full": {"seed": 1, "bulk_weeks": 10, "bulk_flows": 8,
             "incast_weeks": 16, "incast_workers": 8, "short_weeks": 20,
             "engine_weeks": 40},
    "quick": {"seed": 1, "bulk_weeks": 4, "bulk_flows": 4,
              "incast_weeks": 8, "incast_workers": 4, "short_weeks": 8,
              "engine_weeks": 20},
}


def _telemetry_sim(trace_dir: pathlib.Path, label: str):
    """A simulator with a JSONL-only telemetry recorder attached."""
    sim = Simulator()
    telemetry = Telemetry(
        ObsConfig(trace_dir=str(trace_dir), label=label,
                  jsonl=True, chrome_trace=False, csv=False)
    ).attach(sim)
    return sim, telemetry


def _trace_digest(telemetry: Telemetry) -> dict:
    """Write the JSONL artifact and hash its bytes."""
    (jsonl_path,) = [p for p in telemetry.finish() if p.endswith(".jsonl")]
    data = pathlib.Path(jsonl_path).read_bytes()
    return {
        "trace_sha256": hashlib.sha256(data).hexdigest(),
        "trace_lines": data.count(b"\n"),
    }


def _event_core_fields(sim: Simulator) -> dict:
    """Deterministic event-core counters from the timed pass. Same
    seed + same code -> same values, so CI can pin them exactly."""
    stats = sim._queue.stats()
    return {
        "heap_pushes": stats["heap_pushes"],
        "max_heap_len": stats["max_heap_len"],
        "pool_hits": stats["pool_hits"],
        "pool_misses": stats["pool_misses"],
        "pool_hit_rate": stats["pool_hit_rate"],
        "legacy_heap": stats["legacy_heap"],
    }


def _alloc_pass(runner, scale: dict) -> dict:
    """Re-run a workload untimed under tracemalloc: peak traced
    allocation and gc collection counts, without polluting events/s."""
    import gc
    import tracemalloc

    gc.collect()
    collections_before = sum(s["collections"] for s in gc.get_stats())
    tracemalloc.start()
    try:
        with tempfile.TemporaryDirectory(prefix="bench-alloc-") as tmp:
            runner(scale, pathlib.Path(tmp))
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    collections_after = sum(s["collections"] for s in gc.get_stats())
    return {
        "tracemalloc_peak_kb": round(peak / 1024, 1),
        "gc_collections": collections_after - collections_before,
    }


def run_bulk(scale: dict, trace_dir: pathlib.Path) -> dict:
    """Fig-7 style bulk transfer: N TDTCP flows, full telemetry."""
    cfg = ExperimentConfig(
        variant="tdtcp",
        n_flows=scale["bulk_flows"],
        weeks=scale["bulk_weeks"],
        warmup_weeks=2,
        seed=scale["seed"],
    )
    sim, telemetry = _telemetry_sim(trace_dir, "bench_bulk")
    variant = get_variant(cfg.variant)
    testbed = build_two_rack_testbed(
        replace(cfg.rdcn, seed=cfg.seed), sim=sim, ecn=variant.needs_ecn
    )
    context = variant.prepare(testbed, cfg)
    workload = build_workload(
        testbed,
        lambda tb, src, dst, i: variant.make_flow(tb, src, dst, i, cfg, context),
        n_flows=cfg.n_flows,
        trace_sequence=False,
    )
    testbed.start()
    started = perf_counter()
    sim.run(until=cfg.duration_ns)
    wall_s = perf_counter() - started
    row = {
        "events": sim.processed_events,
        "wall_s": round(wall_s, 4),
        "events_per_sec": round(sim.processed_events / wall_s, 1),
        "delivered_bytes": workload.total_delivered_bytes,
        "alloc": _event_core_fields(sim),
    }
    row.update(_trace_digest(telemetry))
    return row


def run_incast_workload(scale: dict, trace_dir: pathlib.Path) -> dict:
    """Barrier-style N-to-1 incast on the shared VOQ."""
    sim, telemetry = _telemetry_sim(trace_dir, "bench_incast")
    testbed = build_two_rack_testbed(
        RDCNConfig(n_hosts_per_rack=max(scale["incast_workers"], 4), seed=scale["seed"]),
        sim=sim,
    )
    started = perf_counter()
    coordinator = run_incast(
        testbed,
        n_workers=scale["incast_workers"],
        duration_ns=testbed.config.week_ns * scale["incast_weeks"],
        connection_cls=TDTCPConnection,
        tdn_count=2,
    )
    wall_s = perf_counter() - started
    row = {
        "events": sim.processed_events,
        "wall_s": round(wall_s, 4),
        "events_per_sec": round(sim.processed_events / wall_s, 1),
        "completed_rounds": len(coordinator.stats.completed),
        "alloc": _event_core_fields(sim),
    }
    row.update(_trace_digest(telemetry))
    return row


def run_shortflow_workload(scale: dict, trace_dir: pathlib.Path) -> dict:
    """Poisson short-flow churn: connection setup/teardown pressure."""
    sim, telemetry = _telemetry_sim(trace_dir, "bench_shortflows")
    testbed = build_two_rack_testbed(RDCNConfig(seed=scale["seed"]), sim=sim)
    started = perf_counter()
    stats = run_short_flow_study(
        testbed,
        TDTCPConnection,
        duration_ns=testbed.config.week_ns * scale["short_weeks"],
        flow_size_bytes=15_000,
        mean_interarrival_ns=usec(400),
        tdn_count=2,
    )
    wall_s = perf_counter() - started
    row = {
        "events": sim.processed_events,
        "wall_s": round(wall_s, 4),
        "events_per_sec": round(sim.processed_events / wall_s, 1),
        "completed_flows": len(stats.completed),
        "alloc": _event_core_fields(sim),
    }
    row.update(_trace_digest(telemetry))
    return row


def run_tiered_bulk(scale: dict) -> dict:
    """Events-equivalent speedup of the tiered fluid fast path.

    The fig-7 bulk config runs once per fidelity (no telemetry on
    either leg). Tiered delivers slightly more than packet on the same
    horizon (no retransmission waste), so the speedup is the wall-clock
    ratio *normalized by delivered bytes*:

        speedup = (packet_wall / tiered_wall) * (tiered_delivered /
                  packet_delivered)

    i.e. packet-equivalent events per second the fluid model stands in
    for, divided by the packet rate. A short empirical-mix engine run
    (both fidelities) rides along as the ``engine_flows_per_sec``
    tracker for the 10M-flow goal.
    """
    from repro.experiments.config import WorkloadConfig
    from repro.experiments.runner import run_experiment

    def timed(config):
        started = perf_counter()
        result = run_experiment(config)
        wall = perf_counter() - started
        if result.failure is not None:
            raise RuntimeError(f"tiered_bulk leg failed: {result.failure.render()}")
        return result, wall

    legs = {}
    for fidelity in ("packet", "tiered"):
        legs[fidelity] = timed(ExperimentConfig(
            variant="tdtcp", n_flows=scale["bulk_flows"],
            weeks=scale["bulk_weeks"], warmup_weeks=2, seed=scale["seed"],
            collect_voq=False, collect_sequence=False, fidelity=fidelity,
        ))
    packet, packet_wall = legs["packet"]
    tiered, tiered_wall = legs["tiered"]
    delivered_ratio = tiered.aggregate_delivered / packet.aggregate_delivered
    speedup = (packet_wall / tiered_wall) * delivered_ratio
    fidelity_report = tiered.fidelity_report

    engine = {"weeks": scale["engine_weeks"], "cdf": "data-mining", "load": 0.6}
    for fidelity in ("packet", "tiered"):
        result, _wall = timed(ExperimentConfig(
            variant="tdtcp", weeks=scale["engine_weeks"], warmup_weeks=2,
            seed=scale["seed"], collect_voq=False, collect_sequence=False,
            fidelity=fidelity,
            workload=WorkloadConfig(kind="empirical", cdf="data-mining",
                                    load=0.6, matrix="permutation"),
        ))
        summary = result.workload_summary or {}
        engine[f"{fidelity}_flows_per_sec"] = summary.get("engine_flows_per_sec")
        engine[f"{fidelity}_completed"] = summary.get("completed")
    return {
        "packet_wall_s": round(packet_wall, 4),
        "tiered_wall_s": round(tiered_wall, 4),
        "packet_delivered": packet.aggregate_delivered,
        "tiered_delivered": tiered.aggregate_delivered,
        "delivered_ratio": round(delivered_ratio, 4),
        "events_equivalent_speedup": round(speedup, 2),
        "fluid_spans": fidelity_report["fluid_spans"],
        "fluid_time_ns": fidelity_report["fluid_time_ns"],
        "virtual_losses": fidelity_report["virtual_losses"],
        "exit_reasons": fidelity_report["exit_reasons"],
        "engine": engine,
    }


def run_ack_micro(scale: dict) -> dict:
    """ns/ACK of the sender-side pipeline, measured in situ.

    Times ``TCPConnection._handle_ack`` (cum-ACK collection, SACK
    application, RTT sampling, RACK detection, CC credit) over a bulk
    cubic run — the per-ACK cost the indexed scoreboard targets.
    """
    import repro.tcp.connection as conn_mod

    original = conn_mod.TCPConnection._handle_ack
    counters = {"acks": 0, "wall_s": 0.0}

    def timed_handle_ack(self, pkt):
        started = perf_counter()
        original(self, pkt)
        counters["wall_s"] += perf_counter() - started
        counters["acks"] += 1

    cfg = ExperimentConfig(
        variant="cubic", n_flows=2, weeks=max(scale["bulk_weeks"] // 2, 3),
        warmup_weeks=1, seed=scale["seed"],
    )
    variant = get_variant(cfg.variant)
    testbed = build_two_rack_testbed(replace(cfg.rdcn, seed=cfg.seed))
    context = variant.prepare(testbed, cfg)
    workload = build_workload(
        testbed,
        lambda tb, src, dst, i: variant.make_flow(tb, src, dst, i, cfg, context),
        n_flows=cfg.n_flows,
        trace_sequence=False,
    )
    conn_mod.TCPConnection._handle_ack = timed_handle_ack
    try:
        testbed.start()
        testbed.sim.run(until=cfg.duration_ns)
    finally:
        conn_mod.TCPConnection._handle_ack = original
    del workload
    acks = counters["acks"]
    return {
        "acks": acks,
        "ns_per_ack": round(counters["wall_s"] * 1e9 / acks, 1) if acks else None,
    }


def run_all(mode: str) -> dict:
    scale = SCALES[mode]
    report = {"schema": SCHEMA, "mode": mode, "workloads": {}}
    with tempfile.TemporaryDirectory(prefix="bench-simcore-") as tmp:
        trace_dir = pathlib.Path(tmp)
        for name, runner in (
            ("bulk", run_bulk),
            ("incast", run_incast_workload),
            ("shortflows", run_shortflow_workload),
        ):
            print(f"[perf-harness] running {name} ({mode})...", flush=True)
            report["workloads"][name] = runner(scale, trace_dir)
            row = report["workloads"][name]
            print(
                f"[perf-harness]   {row['events']:,} events in {row['wall_s']:.2f}s"
                f" -> {row['events_per_sec']:,.0f} events/s"
                f" (trace {row['trace_sha256'][:12]}..., {row['trace_lines']} lines)",
                flush=True,
            )
            row["alloc"].update(_alloc_pass(runner, scale))
            alloc = row["alloc"]
            hit_rate = alloc["pool_hit_rate"]
            print(
                f"[perf-harness]   alloc: {alloc['tracemalloc_peak_kb']:,.0f} KB peak,"
                f" {alloc['gc_collections']} gc collections,"
                f" {alloc['heap_pushes']:,} heap pushes"
                f" (peak heap {alloc['max_heap_len']}),"
                f" pool hit rate "
                + (f"{hit_rate:.2%}" if hit_rate is not None else "n/a"),
                flush=True,
            )
    print("[perf-harness] running ack-pipeline micro...", flush=True)
    report["ack_pipeline"] = run_ack_micro(scale)
    micro = report["ack_pipeline"]
    print(f"[perf-harness]   {micro['acks']:,} ACKs -> {micro['ns_per_ack']} ns/ACK", flush=True)
    print("[perf-harness] running tiered-bulk fidelity comparison...", flush=True)
    report["tiered_bulk"] = run_tiered_bulk(scale)
    tiered = report["tiered_bulk"]
    print(
        f"[perf-harness]   packet {tiered['packet_wall_s']:.2f}s vs tiered "
        f"{tiered['tiered_wall_s']:.2f}s, delivered ratio "
        f"{tiered['delivered_ratio']:.3f} -> "
        f"{tiered['events_equivalent_speedup']:.1f}x events-equivalent "
        f"({tiered['fluid_spans']} fluid spans)",
        flush=True,
    )
    engine = tiered["engine"]
    print(
        f"[perf-harness]   engine ({engine['cdf']} load {engine['load']}): "
        f"{engine['packet_flows_per_sec']:,.0f} flows/s packet vs "
        f"{engine['tiered_flows_per_sec']:,.0f} flows/s tiered",
        flush=True,
    )
    if resource is not None:
        report["peak_rss_kb"] = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return report


def compare(report: dict, baseline: dict, tolerance: float,
            pool_hit_floor: float = None) -> int:
    """Gate the fresh report against a committed baseline. Returns an
    exit code (0 ok / 1 perf regression / 2 trace divergence / 3 bad
    baseline / 4 event-core counter regression)."""
    if (baseline.get("schema") not in ACCEPTED_BASELINE_SCHEMAS
            or baseline.get("mode") != report["mode"]):
        print(
            f"[perf-harness] FAIL: baseline schema/mode mismatch "
            f"(baseline {baseline.get('schema')}/{baseline.get('mode')}, "
            f"fresh {SCHEMA}/{report['mode']})",
            file=sys.stderr,
        )
        return 3
    status = 0
    comparison = {"baseline_mode": baseline["mode"], "traces_identical": True}
    for name, fresh in report["workloads"].items():
        base = baseline["workloads"].get(name)
        if base is None:
            continue
        if fresh["trace_sha256"] != base["trace_sha256"]:
            comparison["traces_identical"] = False
            print(
                f"[perf-harness] FAIL: {name} trace diverged from baseline "
                f"({fresh['trace_sha256'][:12]}... vs {base['trace_sha256'][:12]}...) "
                f"— the change altered simulation results",
                file=sys.stderr,
            )
            status = 2
        ratio = fresh["events_per_sec"] / base["events_per_sec"]
        comparison[f"{name}_events_per_sec_ratio"] = round(ratio, 3)
        if ratio < 1.0 - tolerance and status == 0:
            print(
                f"[perf-harness] FAIL: {name} events/s regressed to "
                f"{ratio:.2f}x of baseline (tolerance {1.0 - tolerance:.2f}x)",
                file=sys.stderr,
            )
            status = 1
        # Counter gates (v2 baselines only). heap_pushes is a pinned
        # deterministic value: a drift means scheduling changed — either
        # a real bug or a deliberate change that must also regenerate
        # the baseline. Only comparable when both runs used the same
        # heap mode (the legacy escape hatch changes the count).
        fresh_alloc = fresh.get("alloc", {})
        base_alloc = base.get("alloc", {}) if isinstance(base.get("alloc"), dict) else {}
        if (base_alloc.get("heap_pushes") is not None
                and fresh_alloc.get("heap_pushes") is not None
                and base_alloc.get("legacy_heap") == fresh_alloc.get("legacy_heap")
                and fresh_alloc["heap_pushes"] != base_alloc["heap_pushes"]):
            print(
                f"[perf-harness] FAIL: {name} heap_pushes drifted from pinned "
                f"baseline ({fresh_alloc['heap_pushes']:,} vs "
                f"{base_alloc['heap_pushes']:,})",
                file=sys.stderr,
            )
            if status == 0:
                status = 4
        if (pool_hit_floor is not None
                and fresh_alloc.get("pool_hit_rate") is not None
                and not fresh_alloc.get("legacy_heap")
                and fresh_alloc["pool_hit_rate"] < pool_hit_floor):
            print(
                f"[perf-harness] FAIL: {name} pool hit rate "
                f"{fresh_alloc['pool_hit_rate']:.2%} below floor "
                f"{pool_hit_floor:.2%}",
                file=sys.stderr,
            )
            if status == 0:
                status = 4
    base_micro = baseline.get("ack_pipeline", {})
    if base_micro.get("ns_per_ack") and report["ack_pipeline"]["ns_per_ack"]:
        comparison["ns_per_ack_ratio"] = round(
            report["ack_pipeline"]["ns_per_ack"] / base_micro["ns_per_ack"], 3
        )
    report["baseline"] = comparison
    if status == 0:
        print(
            "[perf-harness] baseline check ok: traces identical, no events/s "
            "regression, event-core counters within gates"
        )
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI scale (smaller horizons)")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    parser.add_argument("--baseline", type=pathlib.Path, default=None,
                        help="committed BENCH_simcore.json to gate against")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="max events/s regression vs baseline (default 0.20)")
    parser.add_argument("--pool-hit-floor", type=float, default=None,
                        help="fail if any workload's event-pool hit rate is "
                             "below this fraction (default: no floor)")
    parser.add_argument("--tiered-speedup-floor", type=float, default=None,
                        help="fail if the tiered bulk events-equivalent "
                             "speedup is below this factor (default: no floor)")
    args = parser.parse_args(argv)

    report = run_all("quick" if args.quick else "full")
    status = 0
    if args.baseline is not None:
        baseline = json.loads(args.baseline.read_text())
        status = compare(report, baseline, args.tolerance, args.pool_hit_floor)
    if args.tiered_speedup_floor is not None:
        speedup = report["tiered_bulk"]["events_equivalent_speedup"]
        if speedup < args.tiered_speedup_floor:
            print(
                f"[perf-harness] FAIL: tiered events-equivalent speedup "
                f"{speedup:.1f}x below floor {args.tiered_speedup_floor:.1f}x",
                file=sys.stderr,
            )
            if status == 0:
                status = 5

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"[perf-harness] wrote {args.out}")
    if report["mode"] == "full":
        ROOT_OUT.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"[perf-harness] refreshed {ROOT_OUT}")
    return status


if __name__ == "__main__":
    sys.exit(main())
