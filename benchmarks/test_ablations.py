"""Ablations of the reproduction's design choices (DESIGN.md §5).

Not figures from the paper, but sensitivity studies that justify how
the reproduction is configured:

* TDTCP switch pacing on/off (§5.2's "sender pacing" remark);
* the ToR night-announcement policy (slowdown / always / none);
* reTCP's ramp factor alpha.
"""

from dataclasses import replace

import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.variants import TDTCPVariant
from repro.rdcn.config import NotifierConfig, RDCNConfig
from repro.tcp.sockets import create_connection_pair
from repro.core.tdtcp import TDTCPConnection

from benchmarks.conftest import emit

WEEKS = 24
WARMUP = 8


def run(variant, rdcn=None, **kwargs):
    cfg = ExperimentConfig(
        variant=variant,
        rdcn=rdcn if rdcn is not None else RDCNConfig(),
        n_flows=8,
        weeks=WEEKS,
        warmup_weeks=WARMUP,
        **kwargs,
    )
    return run_experiment(cfg)


class PacingAblationVariant(TDTCPVariant):
    """TDTCP with switch pacing disabled."""

    def __init__(self):
        super().__init__(name="tdtcp")  # reuse the registered name

    def make_flow(self, testbed, src, dst, index, exp_config, context):
        return create_connection_pair(
            testbed.sim, src, dst,
            cc_name="cubic", config=exp_config.tcp,
            connection_cls=TDTCPConnection,
            tdn_count=testbed.config.n_tdns,
            switch_pacing=False,
        )


def test_ablation_switch_pacing(benchmark, results_dir):
    """Pacing the post-switch burst must not hurt; it reduces the
    transition drops the paper's §5.2 remark is about."""

    def both():
        paced = run("tdtcp")
        # Monkey-run the unpaced variant through a copy of the spec.
        from repro.experiments import variants as vmod

        original = vmod.VARIANTS["tdtcp"]
        vmod.VARIANTS["tdtcp"] = PacingAblationVariant()
        try:
            unpaced = run("tdtcp")
        finally:
            vmod.VARIANTS["tdtcp"] = original
        return paced, unpaced

    paced, unpaced = benchmark.pedantic(both, rounds=1, iterations=1)
    text = (
        "TDTCP switch pacing ablation:\n"
        f"  paced:   {paced.steady_state_throughput_gbps():6.2f} Gbps, "
        f"{paced.retransmissions} retx\n"
        f"  unpaced: {unpaced.steady_state_throughput_gbps():6.2f} Gbps, "
        f"{unpaced.retransmissions} retx"
    )
    emit(results_dir, "ablation_pacing", text)
    assert paced.retransmissions <= unpaced.retransmissions * 1.5
    assert paced.steady_state_throughput_gbps() > unpaced.steady_state_throughput_gbps() * 0.85


def test_ablation_night_policy(benchmark, results_dir):
    """The 'slowdown' early-warning policy: compare against announcing
    only at day starts and announcing every night."""

    def sweep():
        out = {}
        for policy in ("slowdown", "none", "always"):
            rdcn = RDCNConfig(notifier=NotifierConfig(night_policy=policy))
            out[policy] = run("tdtcp", rdcn)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "TDN night-announcement policy ablation (tdtcp):\n" + "\n".join(
        f"  {policy:<10} {r.steady_state_throughput_gbps():6.2f} Gbps, "
        f"{r.retransmissions} retx, {r.rtos} RTOs"
        for policy, r in results.items()
    )
    emit(results_dir, "ablation_night_policy", text)
    best = max(results.values(), key=lambda r: r.steady_state_throughput_gbps())
    assert results["slowdown"].steady_state_throughput_gbps() >= (
        best.steady_state_throughput_gbps() * 0.9
    )


def test_ablation_retcp_alpha(benchmark, results_dir):
    """reTCP-dyn's ramp factor: too small wastes the circuit, too large
    floods the enlarged VOQ."""

    def sweep():
        return {
            alpha: run("retcpdyn", retcp_alpha=alpha)
            for alpha in (1.5, 2.0, 3.0)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "reTCP-dyn ramp factor ablation:\n" + "\n".join(
        f"  alpha={alpha:<4} {r.steady_state_throughput_gbps():6.2f} Gbps, "
        f"{r.retransmissions} retx"
        for alpha, r in results.items()
    )
    emit(results_dir, "ablation_retcp_alpha", text)
    # The default (2.0) is at least as good as the sweep extremes.
    assert results[2.0].steady_state_throughput_gbps() >= (
        min(r.steady_state_throughput_gbps() for r in results.values())
    )
