"""Figure 2: motivation sequence graph.

CUBIC and MPTCP against the analytic optimal and packet-only lines over
three optical weeks. Expected shape: both variants track the packet
network's slope in unshaded periods but capture only a sliver of the
optical day's extra capacity; MPTCP sits below CUBIC.
"""

from repro.experiments.figures import fig2
from repro.experiments.report import render_seq_graph, render_throughput_summary

from benchmarks.conftest import emit


def test_fig02_sequence_graph(benchmark, results_dir, scale):
    data = benchmark.pedantic(
        lambda: fig2(**scale), rounds=1, iterations=1, warmup_rounds=0
    )
    text = "\n\n".join(
        [render_seq_graph(data, points=14), render_throughput_summary(data)]
    )
    emit(results_dir, "fig02", text)

    thr = data.throughputs_gbps
    optimal_avg = 20.57  # analytic for the 6:1 / 10-100G schedule
    # Paper: both variants fall far below optimal...
    assert thr["cubic"] < optimal_avg * 0.75
    assert thr["mptcp"] < optimal_avg * 0.75
    # ...and MPTCP under-performs CUBIC (§2.2).
    assert thr["mptcp"] < thr["cubic"]
