"""Figure 7: all variants under bandwidth AND latency differences.

(a) sequence graphs: TDTCP dramatically out-performs CUBIC, DCTCP and
MPTCP; reTCP needs dynamic buffers ("retcpdyn") to compete.
(b) VOQ occupancy: retcpdyn pre-builds a large queue ahead of each
circuit day; TDTCP shows its initial-burst spike at the optical->packet
transition but stays modest otherwise.
"""

from repro.experiments.figures import fig7
from repro.experiments.report import (
    render_headline_claims,
    render_seq_graph,
    render_throughput_summary,
    render_voq_graph,
)

from benchmarks.conftest import emit


def test_fig07_bw_and_latency(benchmark, results_dir, scale):
    data = benchmark.pedantic(
        lambda: fig7(**scale), rounds=1, iterations=1, warmup_rounds=0
    )
    text = "\n\n".join(
        [
            render_seq_graph(data, points=14),
            render_voq_graph(data, points=14),
            render_throughput_summary(data),
            render_headline_claims(data),
        ]
    )
    emit(results_dir, "fig07", text)

    thr = data.throughputs_gbps
    # Figure 7a orderings.
    assert thr["tdtcp"] > thr["cubic"] * 1.1
    assert thr["tdtcp"] > thr["dctcp"] * 1.1
    assert thr["tdtcp"] > thr["mptcp"] * 1.2
    assert thr["mptcp"] == min(thr.values())
    assert thr["retcpdyn"] > thr["retcp"]
    # Figure 7b: retcpdyn fills the enlarged VOQ; nobody else exceeds
    # the stock 96-segment (16 jumbo) capacity.
    assert data.results["retcpdyn"].voq_max > 96
    assert data.results["tdtcp"].voq_max <= 96
