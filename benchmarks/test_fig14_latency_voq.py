"""Figure 14 (Appendix A.4): VOQ occupancy under latency-only variation
at fixed 10 Gbps and 100 Gbps.

Expected shape: TDTCP's buffer use is in line with CUBIC/DCTCP/MPTCP,
while reTCP-dyn still builds large queues ahead of each circuit day —
mismatched here, because with fixed bandwidth the circuit BDP is
*smaller* (lower latency), so prebuffering buys nothing."""

import pytest

from repro.experiments.figures import fig14
from repro.experiments.report import render_throughput_summary, render_voq_graph

from benchmarks.conftest import emit


@pytest.mark.parametrize("rate_gbps", [10.0, 100.0])
def test_fig14_latency_only_voq(benchmark, results_dir, scale, rate_gbps):
    # Fixed-rate fabrics move more packets per week than the hybrid
    # setting (no slow days); halve the horizon to keep it tractable.
    fig_scale = dict(scale)
    fig_scale["weeks"] = max(scale["weeks"] // 2, scale["warmup_weeks"] + 4)
    fig_scale["warmup_weeks"] = max(scale["warmup_weeks"] // 2, 2)
    data = benchmark.pedantic(
        lambda: fig14(rate_gbps, **fig_scale), rounds=1, iterations=1, warmup_rounds=0
    )
    text = "\n\n".join(
        [render_voq_graph(data, points=14), render_throughput_summary(data)]
    )
    emit(results_dir, f"fig14_{int(rate_gbps)}g", text)

    # reTCP-dyn's prebuffering still fills the enlarged VOQ...
    assert data.results["retcpdyn"].voq_max > 96
    # ...while TDTCP stays within the stock queue like everyone else.
    assert data.results["tdtcp"].voq_max <= 96
