"""The paper's headline numbers ("Table 1" of this reproduction).

Abstract / §5.2 claims:

* TDTCP improves long-lived flow throughput by ~24% over single-path
  CUBIC and DCTCP;
* by ~41% over MPTCP;
* and matches reTCP-with-dynamic-buffers without requiring switch
  buffer management.

Absolute percentages depend on the schedule/bandwidth regime (ours are
larger — see EXPERIMENTS.md); the assertions lock in the *directions*.
"""

from repro.experiments.figures import fig7
from repro.experiments.report import headline_claims, render_headline_claims

from benchmarks.conftest import emit


def test_headline_claims(benchmark, results_dir, scale):
    data = benchmark.pedantic(
        lambda: fig7(**scale), rounds=1, iterations=1, warmup_rounds=0
    )
    claims = headline_claims(data)
    emit(results_dir, "headline", render_headline_claims(data))

    assert claims["tdtcp_vs_cubic_pct"] > 10.0      # paper: +24%
    assert claims["tdtcp_vs_dctcp_pct"] > 10.0      # paper: +24%
    assert claims["tdtcp_vs_mptcp_pct"] > 25.0      # paper: +41%
    # Competitive with reTCP-dyn: within a modest band rather than the
    # large margins it holds over everything else.
    assert -25.0 < claims["tdtcp_vs_retcpdyn_pct"] < 45.0
