"""Figure 9: latency difference only, both TDNs at 100 Gbps.

Expected shape: the buffer-filling variants (CUBIC, reTCP, TDTCP) all
perform almost identically; DCTCP — latency-sensitive — does worse;
MPTCP again brings up the rear; optimal ~= packet-only.
"""

from repro.experiments.figures import fig9
from repro.experiments.report import render_seq_graph, render_throughput_summary

from benchmarks.conftest import emit


def test_fig09_latency_only(benchmark, results_dir, scale):
    # The 100 Gbps-everywhere fabric moves ~10x the packets per week of
    # the hybrid setting; half the weeks keeps the suite tractable.
    fig_scale = dict(scale)
    fig_scale["weeks"] = max(scale["weeks"] // 2, scale["warmup_weeks"] + 4)
    fig_scale["warmup_weeks"] = max(scale["warmup_weeks"] // 2, 2)
    data = benchmark.pedantic(
        lambda: fig9(**fig_scale), rounds=1, iterations=1, warmup_rounds=0
    )
    text = "\n\n".join(
        [render_seq_graph(data, points=14), render_throughput_summary(data)]
    )
    emit(results_dir, "fig09", text)

    thr = data.throughputs_gbps
    # TDTCP and CUBIC perform almost identically (paper's caption).
    assert abs(thr["tdtcp"] - thr["cubic"]) / thr["cubic"] < 0.35
    # MPTCP at the rear.
    assert thr["mptcp"] == min(thr.values())
