"""Figure 10: reordering events and retransmitted packets per optical
day — CDFs for CUBIC, MPTCP, and TDTCP.

Expected shape: TDTCP cuts off CUBIC's spurious-retransmission tail
(per delivered byte) and a healthy fraction of TDTCP's optical days see
no reordering-induced retransmission at all.
"""

from repro.experiments.figures import fig10
from repro.experiments.report import render_cdf_summary
from repro.metrics.cdf import fraction_at_or_below

from benchmarks.conftest import emit


def test_fig10_reordering_cdfs(benchmark, results_dir, scale):
    fig_scale = dict(scale)
    fig_scale["weeks"] = max(fig_scale["weeks"], 32)  # CDFs need samples
    data = benchmark.pedantic(
        lambda: fig10(**fig_scale), rounds=1, iterations=1, warmup_rounds=0
    )
    reorder = {v: r.reordering_per_day for v, r in data.results.items()}
    retx = {v: r.retx_marks_per_day for v, r in data.results.items()}
    text = "\n\n".join(
        [
            render_cdf_summary("fig10a reordering events/day", reorder),
            render_cdf_summary("fig10b retransmission marks/day", retx),
            "spurious retransmissions per GB delivered:\n"
            + "\n".join(
                f"  {v:<8} {r.spurious_retransmissions / max(r.aggregate_delivered / 1e9, 1e-9):8.1f}"
                for v, r in sorted(data.results.items())
            ),
        ]
    )
    emit(results_dir, "fig10", text)

    # TDTCP's relaxed detection: fewer spurious retransmissions per
    # delivered byte than CUBIC.
    tdtcp = data.results["tdtcp"]
    cubic = data.results["cubic"]
    tdtcp_rate = tdtcp.spurious_retransmissions / max(tdtcp.aggregate_delivered, 1)
    cubic_rate = cubic.spurious_retransmissions / max(cubic.aggregate_delivered, 1)
    assert tdtcp_rate <= cubic_rate

    # Some optical days are completely clean for TDTCP (paper: 80%).
    assert fraction_at_or_below(tdtcp.retx_marks_per_day, 0) > 0.0
