#!/usr/bin/env python3
"""Render a campaign JSONL event log into a static dashboard.

The log comes from ``python -m repro.experiments.cli <target>
--campaign-log out/campaign.jsonl``. This tool validates it against the
event schema and renders the dashboard CI uploads as an artifact:

    python tools/campaign_report.py out/campaign.jsonl \\
        --html out/campaign.html --markdown out/campaign.md \\
        --summary-json out/campaign_summary.json --validate

``--validate`` exits 1 when any record fails the schema (missing
fields, wrong types, non-monotonic seq). ``--summary-json`` writes the
deterministic digest (wall-time fields stripped) — byte-identical
across identical seeded campaigns, so it doubles as a regression
fingerprint.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.experiments.report import render_campaign, render_campaign_html  # noqa: E402
from repro.obs.campaign import (  # noqa: E402
    campaign_summary,
    read_campaign_with_tail,
    validate_records,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Validate and render a repro campaign JSONL log."
    )
    parser.add_argument("log", help="campaign JSONL file (from --campaign-log)")
    parser.add_argument("--html", metavar="FILE", default=None,
                        help="write the HTML dashboard here")
    parser.add_argument("--markdown", metavar="FILE", default=None,
                        help="write the markdown dashboard here")
    parser.add_argument("--summary-json", metavar="FILE", default=None,
                        help="write the deterministic campaign summary here")
    parser.add_argument("--validate", action="store_true",
                        help="exit 1 if any record fails the event schema")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the markdown dump on stdout")
    args = parser.parse_args(argv)

    try:
        records, tail = read_campaign_with_tail(args.log)
    except (OSError, ValueError) as error:
        print(f"cannot read {args.log}: {error}", file=sys.stderr)
        return 1
    if tail is not None:
        # A SIGKILL mid-write leaves exactly one torn final line; the
        # journal is still consumable (and resumable) without it.
        print(
            f"warning: tolerated truncated final record "
            f"({len(tail)} bytes): {tail[:60]!r}…",
            file=sys.stderr,
        )

    errors = validate_records(records)
    if errors:
        for error in errors:
            print(f"schema: {error}", file=sys.stderr)
        print(f"{len(errors)} schema violations in {len(records)} records",
              file=sys.stderr)
        if args.validate:
            return 1
    elif args.validate:
        print(f"{len(records)} records schema-valid", file=sys.stderr)

    markdown = render_campaign(records)
    if args.markdown:
        pathlib.Path(args.markdown).write_text(markdown)
    if args.html:
        pathlib.Path(args.html).write_text(render_campaign_html(records))
    if args.summary_json:
        summary = campaign_summary(records)
        pathlib.Path(args.summary_json).write_text(
            json.dumps(summary, sort_keys=True, indent=2) + "\n"
        )
    if not args.quiet:
        print(markdown)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
