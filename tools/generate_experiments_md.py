#!/usr/bin/env python3
"""Assemble EXPERIMENTS.md from benchmarks/results/*.txt.

Run after ``pytest benchmarks/ --benchmark-only``:

    python tools/generate_experiments_md.py
"""

from __future__ import annotations

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"

# (section title, paper expectation, result files)
SECTIONS = [
    (
        "Figure 2 — motivation sequence graph",
        "CUBIC and MPTCP fall far below the optimal line: their slopes track "
        "the packet network in unshaded periods and capture only a sliver of "
        "the optical day; MPTCP sits below CUBIC (§2.2).",
        ["fig02.txt"],
    ),
    (
        "Figure 7 — bandwidth AND latency differences",
        "TDTCP dramatically out-performs CUBIC/DCTCP/MPTCP (+24%/+24%/+41% "
        "in the paper); reTCP is competitive only with dynamic buffer "
        "resizing; TDTCP's VOQ occupancy is modest with an initial-burst "
        "spike at the optical-to-packet transition; retcpdyn fills its "
        "enlarged 50-jumbo VOQ ahead of each circuit day.",
        ["fig07.txt"],
    ),
    (
        "Figure 8 — bandwidth difference only",
        "CUBIC and DCTCP adapt to pure bandwidth variation and only slightly "
        "under-perform TDTCP; retcpdyn approaches optimal; MPTCP still "
        "struggles.",
        ["fig08.txt"],
    ),
    (
        "Figure 9 — latency difference only (100 Gbps)",
        "All buffer-filling variants perform almost identically (TDTCP ~= "
        "CUBIC); DCTCP, latency-sensitive, does worse; MPTCP brings up the "
        "rear; optimal ~= packet-only.",
        ["fig09.txt"],
    ),
    (
        "Figure 10 — reordering and spurious retransmissions",
        "Paper (jumbo units): CUBIC retransmits 15 pkts/day at p90, 133 max; "
        "TDTCP cuts the tail to 7 at p90, 54 max, with 80% of optical days "
        "completely clean. Here (1500 B units, 6x the packet count per "
        "byte): TDTCP's per-day marks sit below CUBIC's at the median, its "
        "spurious-retransmission rate per delivered byte is an order of "
        "magnitude lower, and a fraction of its optical days are fully "
        "clean.",
        ["fig10.txt"],
    ),
    (
        "Figure 11 — TDN change notification optimizations",
        "The three §5.4 optimizations combined buy +12.7% throughput in the "
        "paper; here the optimized notification path is strictly faster and "
        "buys a positive (smaller) margin, because the simulated fabric's "
        "baseline notification latency is already low.",
        ["fig11.txt"],
    ),
    (
        "Figure 13 (A.3) — VOQ occupancy, CUBIC & MPTCP",
        "CUBIC keeps the VOQ near-full through packet days and drains during "
        "the optical day (service >> arrival); MPTCP shows the tdm_schd "
        "switching dip.",
        ["fig13.txt"],
    ),
    (
        "Figure 14 (A.4) — VOQ occupancy, latency-only",
        "With bandwidth fixed, the circuit BDP is smaller than the packet "
        "BDP, so reTCP-dyn's queue prebuilding is mismatched (it still fills "
        "the enlarged VOQ); TDTCP's buffer use stays in line with "
        "CUBIC/DCTCP/MPTCP.",
        ["fig14_10g.txt", "fig14_100g.txt"],
    ),
    (
        "Headline claims (the paper's 'table')",
        "TDTCP +24% over CUBIC and DCTCP, +41% over MPTCP, parity with "
        "reTCP-dyn. Directions reproduce; magnitudes are larger on the "
        "cleaner simulated fabric.",
        ["headline.txt"],
    ),
    (
        "§5.4 microbenchmarks — notification components",
        "ICMP packet caching: 8x at p50, 2.7x at p99. Push -> pull flow "
        "update: ~3 orders of magnitude. Dedicated control network: 5x "
        "end-to-end.",
        ["micro_caching.txt", "micro_push_pull.txt", "micro_dedicated.txt"],
    ),
    (
        "Extension — duty-cycle ratio sweep (§5.1 future work)",
        "The paper defers ratios other than 6:1. Measured: TDTCP's relative "
        "gain grows with the optical share (2:1) and shrinks as circuits "
        "become rare (13:1), never dropping below parity.",
        ["ext_duty_ratio.txt"],
    ),
    (
        "Extension — day-length sweep (§3.5 operating regime)",
        "TDTCP's advantage holds across day lengths from ~0.6x to ~10x the "
        "packet RTT, largest where days are a handful of RTTs.",
        ["ext_day_length.txt"],
    ),
    (
        "Extension — short-lived flows (§5.1's deferred claim)",
        "\"Overall, we do not expect TDTCP to impact the completion time of "
        "short-lived flows.\" Measured: FCT distributions of 15 KB RPCs are "
        "indistinguishable between plain TCP and TDTCP.",
        ["ext_short_flows.txt"],
    ),
    (
        "Extension — latency-sensitive CCA inside TDTCP (Figure 9's hypothesis)",
        "Running DCTCP inside every TDN of a TDTCP connection at least "
        "matches plain DCTCP on the latency-only fabric.",
        ["ext_dctcp_per_tdn.txt"],
    ),
    (
        "Extension — incast (synchronized many-to-one)",
        "Not a paper figure: the classic DCN stress pattern on the paper's "
        "fabric. Round times grow with fan-in for every variant; TDTCP's "
        "per-TDN accounting survives the convergence and completes rounds "
        "at least as fast as plain TCP.",
        ["ext_incast.txt"],
    ),
    (
        "Ablations — reproduction design choices",
        "Switch pacing (the §5.2 'sender pacing' remark), the ToR night-"
        "announcement policy, and reTCP's ramp factor, each quantified.",
        ["ablation_pacing.txt", "ablation_night_policy.txt", "ablation_retcp_alpha.txt"],
    ),
]

HEADER = """\
# EXPERIMENTS — paper vs. measured

Every table and figure of the paper's evaluation, regenerated by
`pytest benchmarks/ --benchmark-only` on the simulated testbed
(defaults: 8 flows, 24 optical weeks after 8 warm-up weeks, seed 1;
scale with `REPRO_WEEKS` / `REPRO_FLOWS` / `REPRO_SEED`). The text
tables below are verbatim benchmark output; the *shape* statements in
each "paper expectation" paragraph are asserted by the benchmark that
produced the table.

Scale reminders (full details in DESIGN.md §7): this is a discrete-event
simulation, not a kernel on hardware — absolute Gbps differ from the
paper; MSS is 1500 B with the VOQ at the paper's byte capacity (96
segments = 16 jumbo frames, reported in jumbo equivalents in the VOQ
tables); the paper averages thousands of optical weeks, we average tens.

This file is generated: `python tools/generate_experiments_md.py`.
"""


def main() -> int:
    if not RESULTS.is_dir():
        print("no benchmarks/results directory — run the benchmarks first", file=sys.stderr)
        return 1
    parts = [HEADER]
    missing = []
    for title, expectation, files in SECTIONS:
        parts.append(f"\n## {title}\n")
        parts.append(f"**Paper expectation.** {expectation}\n")
        for name in files:
            path = RESULTS / name
            if not path.exists():
                missing.append(name)
                parts.append(f"*(missing: {name} — benchmark not yet run)*\n")
                continue
            parts.append("```")
            parts.append(path.read_text().rstrip())
            parts.append("```\n")
    out = ROOT / "EXPERIMENTS.md"
    out.write_text("\n".join(parts))
    print(f"wrote {out}")
    if missing:
        print(f"missing results: {', '.join(missing)}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
