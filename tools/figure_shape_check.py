#!/usr/bin/env python3
"""Figure-shape regression gate for tiered fidelity.

Runs fig2 (motivation) and fig7 (the paper's headline comparison) at a
small seeded scale in both ``fidelity="packet"`` and
``fidelity="tiered"``, then checks that the fluid fast path preserves
the *shape* of the paper's results rather than their exact bytes:

* per-variant steady-state throughput in tiered mode stays within a
  pinned band of the packet value — exactly 1.0x for variants the
  fluid model force-falls-back on (dctcp, mptcp, retcp, retcpdyn run
  packet fidelity either way, so any drift there is a real bug), and
  [1.0, 1.5]x for fluid variants (the model has no retransmission
  waste, so tiered lands slightly high; measured ~1.2-1.4x at this
  scale);
* fig7's headline claims stay in place: every TDTCP-vs-other
  throughput gain moves by at most a pinned number of percentage
  points across fidelities. The fluid model's optimism is asymmetric —
  it inflates fluid variants (tdtcp, cubic) but not forced-packet ones
  — so gains shift by up to ~22 points at this scale (and near-parity
  pairs like tdtcp-vs-retcpdyn can even flip sign); the gate bounds
  the shift rather than demanding sign-stability the model cannot
  honestly provide.

This is the statistical counterpart of the byte-identity gate in
``benchmarks/perf_harness.py``: packet traces must not change at all;
tiered figures must stay within these tolerances. Exit 0 on pass, 1 on
any shape violation, with every check printed either way.

Usage::

    PYTHONPATH=src python tools/figure_shape_check.py
    PYTHONPATH=src python tools/figure_shape_check.py --weeks 14 --flows 8
"""

from __future__ import annotations

import argparse
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.figures import fig2, fig7  # noqa: E402
from repro.experiments.report import headline_claims  # noqa: E402
from repro.sim.fastpath import FLUID_VARIANTS  # noqa: E402

#: Tiered/packet throughput band for fluid variants (no retransmission
#: waste or ramp-up stalls -> tiered is slightly optimistic). Mirrors
#: the pinned band in tests/test_fastpath.py.
FLUID_LOW, FLUID_HIGH = 1.0, 1.5
#: Forced-packet variants rerun the identical packet path, so their
#: ratio must be exactly 1 up to float formatting.
FORCED_TOL = 1e-9
#: Max movement of a fig7 headline gain (percentage points) across
#: fidelities. Measured shifts at the default scale: -20 (vs cubic,
#: itself fluid-boosted) to +21 (vs forced-packet variants); 35 leaves
#: headroom for seed scatter while still catching a broken model.
MAX_GAIN_SHIFT_PCT = 35.0


def run_both(figure, weeks: int, flows: int, seed: int):
    packet = figure(weeks=weeks, warmup_weeks=2, n_flows=flows, seed=seed,
                    fidelity="packet")
    tiered = figure(weeks=weeks, warmup_weeks=2, n_flows=flows, seed=seed,
                    fidelity="tiered")
    return packet, tiered


def check_ratios(name: str, packet, tiered) -> list:
    failures = []
    for variant, packet_thr in sorted(packet.throughputs_gbps.items()):
        tiered_thr = tiered.throughputs_gbps.get(variant)
        if tiered_thr is None:
            failures.append(f"{name}/{variant}: missing from tiered run")
            continue
        ratio = tiered_thr / packet_thr if packet_thr else float("inf")
        if variant in FLUID_VARIANTS:
            ok = FLUID_LOW <= ratio <= FLUID_HIGH
            band = f"[{FLUID_LOW}, {FLUID_HIGH}] (fluid)"
        else:
            ok = abs(ratio - 1.0) <= FORCED_TOL
            band = "exactly 1.0 (forced packet)"
        print(f"  {name}/{variant:<10} packet {packet_thr:6.2f} Gbps, "
              f"tiered {tiered_thr:6.2f} Gbps, ratio {ratio:.4f} "
              f"{'ok' if ok else 'FAIL'} — expected {band}")
        if not ok:
            failures.append(
                f"{name}/{variant}: tiered/packet throughput ratio "
                f"{ratio:.4f} outside {band}"
            )
    return failures


def check_headline_shift(packet, tiered) -> list:
    failures = []
    packet_claims = headline_claims(packet)
    tiered_claims = headline_claims(tiered)
    for key, packet_gain in sorted(packet_claims.items()):
        tiered_gain = tiered_claims.get(key)
        if tiered_gain is None:
            failures.append(f"fig7 claim {key}: missing from tiered run")
            continue
        shift = tiered_gain - packet_gain
        ok = abs(shift) <= MAX_GAIN_SHIFT_PCT
        print(f"  fig7 {key:<22} packet {packet_gain:+7.1f}%, "
              f"tiered {tiered_gain:+7.1f}% (shift {shift:+.1f} pts) "
              f"{'ok' if ok else 'FAIL'}")
        if not ok:
            failures.append(
                f"fig7 claim {key}: gain moved {shift:+.1f} points across "
                f"fidelities (packet {packet_gain:+.1f}% vs tiered "
                f"{tiered_gain:+.1f}%), beyond {MAX_GAIN_SHIFT_PCT} allowed"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--weeks", type=int, default=10,
                        help="horizon in optical weeks (default 10)")
    parser.add_argument("--flows", type=int, default=4,
                        help="flows per variant (default 4)")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    failures = []
    for name, figure in (("fig2", fig2), ("fig7", fig7)):
        print(f"[figure-shape] {name} at weeks={args.weeks} "
              f"flows={args.flows} seed={args.seed}", flush=True)
        packet, tiered = run_both(figure, args.weeks, args.flows, args.seed)
        for label, data in (("packet", packet), ("tiered", tiered)):
            if data.failures:
                failures.extend(
                    f"{name}/{variant} ({label}): {failure.render()}"
                    for variant, failure in data.failures.items()
                )
        failures.extend(check_ratios(name, packet, tiered))
        if name == "fig7":
            failures.extend(check_headline_shift(packet, tiered))

    if failures:
        print(f"[figure-shape] FAIL: {len(failures)} violation(s)",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("[figure-shape] ok: tiered figures preserve packet-mode shape")
    return 0


if __name__ == "__main__":
    sys.exit(main())
